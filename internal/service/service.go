// Package service implements qosrmad's long-running HTTP/JSON decision
// service over a compiled simulation database: per-machine RMA decisions
// for co-phase vectors (/v1/decide), collocation scoring and online
// placement (/v1/score), asynchronous scenario sweeps streaming CSV/JSON
// (/v1/sweep), liveness/metadata endpoints (/v1/healthz, /v1/meta), and a
// live-ops control plane — Prometheus-text metrics (/metrics), atomic
// database hot-swap (/admin/reload, Server.Swap), a periodic self-checker
// that spot-audits cached decisions against fresh library computations
// (/admin/check), and an operator status API (/admin/status).
//
// The decision path is sharded: queries hash to one of N shards by their
// canonical co-phase key, and each shard's single worker owns its decision
// LRU, its per-configuration managers (with their reusable curve buffers)
// and its statistics scratch, so the hot path takes no locks and performs
// no allocation beyond the response. Batching, sharding and caching are
// answer-invariant: the service is bit-identical to direct library calls,
// and the self-checker continuously re-verifies that invariant in
// production, degrading /v1/healthz to 503 when an audit fails.
//
// The serving state (database + scorer + version) lives behind one atomic
// snapshot pointer (see snapshot.go): reloads swap it without dropping
// in-flight requests, and Server.Shutdown drains queued decisions and
// running sweep jobs before stopping, so a rolling restart loses nothing.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"qosrma/internal/ops"
	"qosrma/internal/resilience"
	"qosrma/internal/simdb"
	"qosrma/internal/sweep"
)

// Options configures a Server.
type Options struct {
	// Shards is the number of decision shards (default GOMAXPROCS, capped
	// at 16: each shard is one worker goroutine plus its caches).
	Shards int
	// Batch is the micro-batch size: how many queued queries one shard
	// wakeup drains before blocking again (default 64).
	Batch int
	// CacheSize is the per-shard decision LRU capacity in entries
	// (0 = default 4096, negative disables caching).
	CacheSize int
	// QueueDepth is the per-shard queue capacity (default 4 x Batch).
	QueueDepth int
	// MaxBatch bounds the queries accepted in one HTTP request
	// (default 1024).
	MaxBatch int
	// MaxJobs bounds the retained sweep jobs (default 64): at the cap the
	// oldest finished job is evicted, and submits are refused with 429
	// while every slot is running.
	MaxJobs int
	// MaxInflight bounds concurrently served decide/score requests: at
	// the limit the server answers 503 + Retry-After immediately instead
	// of queueing without bound (load shedding). 0 selects the default
	// 1024; negative disables the gate.
	MaxInflight int

	// Source labels the initial database in /admin/status and /v1/meta
	// (default "built").
	Source string
	// Reloader produces a fresh database for SIGHUP and bodyless
	// POST /admin/reload requests, returning the database and a source
	// label. Nil disables source-less reloads (explicit {"path": ...}
	// reloads keep working).
	Reloader func() (*simdb.DB, string, error)
	// AuditInterval is the self-checker period; zero or negative disables
	// the periodic goroutine (POST /admin/check still audits on demand).
	AuditInterval time.Duration
	// AuditSamples bounds the cached decisions re-verified per audit
	// (default 16, spread across shards).
	AuditSamples int
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Shards <= 0 {
		o.Shards = runtime.GOMAXPROCS(0)
		if o.Shards > 16 {
			o.Shards = 16
		}
	}
	if o.Batch <= 0 {
		o.Batch = 64
	}
	if o.CacheSize == 0 {
		o.CacheSize = 4096
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 4 * o.Batch
	}
	if o.MaxBatch <= 0 {
		o.MaxBatch = 1024
	}
	if o.MaxJobs <= 0 {
		o.MaxJobs = 64
	}
	if o.MaxInflight == 0 {
		o.MaxInflight = 1024
	}
	if o.Source == "" {
		o.Source = "built"
	}
	return o
}

// Server is the decision service: an http.Handler over a compiled
// database and a sweep engine. Construct with New; stop with Shutdown
// (graceful drain) or Close (immediate).
type Server struct {
	engine *sweep.Engine
	opt    Options

	// snap is the current serving state; gen feeds snapshot generations.
	snap atomic.Pointer[snapshot]
	gen  atomic.Uint64

	mux     *http.ServeMux
	routes  []string
	shards  []*shard
	quit    chan struct{}
	started time.Time

	metrics serverMetrics
	checker *ops.Checker

	// stateMu orders decide fan-out against Close: decides hold the read
	// side while their tasks are in flight, Close takes the write side
	// before stopping the workers, so no accepted task is ever stranded.
	stateMu sync.RWMutex
	closed  bool

	// gate sheds decide/score load beyond Options.MaxInflight (nil =
	// unlimited).
	gate *resilience.Gate

	// Binary serving path (wireserver.go): counters plus the listener and
	// connection sets Close tears down. wireDone refuses registration once
	// the server has closed; wireDraining makes connection loops answer
	// their in-flight frame, send a goaway Error frame and exit, with
	// wireWG counting the loops still running.
	wire         wireStats
	wireMu       sync.Mutex
	wireLns      map[net.Listener]struct{}
	wireConns    map[net.Conn]struct{}
	wireDone     bool
	wireDraining bool
	wireWG       sync.WaitGroup

	// draining refuses new decide/score/sweep work during Shutdown while
	// status endpoints keep answering; jobMu serializes the draining flag
	// against sweep-job registration so Shutdown's jobWG.Wait is sound.
	draining atomic.Bool
	jobMu    sync.Mutex
	jobWG    sync.WaitGroup

	jobs   *jobTable
	jobSem chan struct{} // serializes sweep-job execution
}

// errServerClosed is the fail-fast answer for requests after Close.
var errServerClosed = errors.New("service: server is closed")

// errDraining is the answer for new work during graceful shutdown.
var errDraining = errors.New("service: server is draining")

// errOverloaded is the load-shed answer once MaxInflight decide/score
// requests are already in flight.
var errOverloaded = errors.New("service: overloaded, request shed")

// New builds a server over the database. The sweep engine carries the
// single-flight result cache /v1/sweep jobs share; pass nil for a private
// engine.
func New(db *simdb.DB, engine *sweep.Engine, opt Options) *Server {
	if engine == nil {
		engine = sweep.NewEngine()
	}
	s := &Server{
		engine:  engine,
		opt:     opt.withDefaults(),
		mux:     http.NewServeMux(),
		quit:    make(chan struct{}),
		started: time.Now(),
	}
	s.snap.Store(s.newSnapshot(db, s.opt.Source))
	s.gate = resilience.NewGate(s.opt.MaxInflight)
	s.jobs = newJobTable(s.opt.MaxJobs)
	s.jobSem = make(chan struct{}, 1)
	s.shards = make([]*shard, s.opt.Shards)
	for i := range s.shards {
		sh := &shard{srv: s, ch: make(chan task, s.opt.QueueDepth)}
		sh.adopt(s.snap.Load())
		s.shards[i] = sh
		go sh.run()
	}
	s.initMetrics()

	s.checker = ops.NewChecker(func(samples int) ops.AuditReport {
		rep := s.Audit(samples)
		if rep.Pass() {
			s.metrics.auditPass.Inc()
		} else {
			s.metrics.auditFail.Inc()
		}
		return rep
	}, s.opt.AuditInterval, s.opt.AuditSamples)
	s.checker.Start()

	s.handle("GET /v1/healthz", s.handleHealthz)
	s.handle("GET /v1/meta", s.handleMeta)
	s.handle("POST /v1/decide", s.handleDecide)
	s.handle("POST /v1/score", s.handleScore)
	s.handle("POST /v1/sweep", s.handleSweepSubmit)
	s.handle("GET /v1/sweep/{id}", s.handleSweepStatus)
	s.handle("GET /v1/sweep/{id}/result", s.handleSweepResult)
	s.handle("GET /metrics", s.metrics.reg.ServeHTTP)
	s.handle("GET /admin/status", s.handleAdminStatus)
	s.handle("POST /admin/reload", s.handleAdminReload)
	s.handle("POST /admin/check", s.handleAdminCheck)
	return s
}

// handle registers a route and records its pattern for Routes.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	s.routes = append(s.routes, pattern)
	s.mux.HandleFunc(pattern, h)
}

// Routes returns the registered route patterns ("METHOD /path"), in
// registration order — the contract tests and the docs-check script
// compare this surface against docs/api.md.
func (s *Server) Routes() []string {
	return append([]string(nil), s.routes...)
}

// ServeHTTP dispatches to the versioned API.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Close stops the shard workers immediately. It waits for in-flight
// decide fan-outs to drain (their tasks are always processed), and later
// requests answer 503 instead of queueing into stopped shards. Close is
// idempotent. For a graceful stop that also waits for queued work and
// running sweep jobs, use Shutdown.
func (s *Server) Close() {
	s.stateMu.Lock()
	if !s.closed {
		s.closed = true
		close(s.quit)
	}
	s.stateMu.Unlock()
	s.checker.Stop()
	s.closeWire()
}

// Shutdown gracefully drains the server: new decide/score/sweep requests
// are refused with 503 (Retry-After: 1) while status endpoints keep
// answering, running sweep jobs and in-flight decide fan-outs complete,
// wire connections finish their in-flight frame and receive a goaway
// Error frame, and the shard workers stop. It returns nil when the drain finished
// within ctx, or ctx.Err() after forcing an immediate close at the
// deadline (in-flight work still completes in the background — nothing is
// dropped, the caller just stops waiting). Callers typically pair it with
// http.Server.Shutdown, which stops accepting connections first.
func (s *Server) Shutdown(ctx context.Context) error {
	s.jobMu.Lock()
	s.draining.Store(true)
	s.jobMu.Unlock()
	s.checker.Stop()

	// Phase 1: running sweep jobs. The draining flag (set under jobMu)
	// guarantees no new job registers after this Wait starts.
	jobsDone := make(chan struct{})
	go func() { s.jobWG.Wait(); close(jobsDone) }()
	select {
	case <-jobsDone:
	case <-ctx.Done():
		go s.Close()
		return ctx.Err()
	}

	// Phase 1b: wire connections. Listeners stop accepting, every
	// connection loop finishes the frame it is reading, answers it, sends
	// a goaway Error frame (Unavailable) and exits; clients treat the
	// goaway as a signal to fail over.
	s.drainWire()
	wireDone := make(chan struct{})
	go func() { s.wireWG.Wait(); close(wireDone) }()
	select {
	case <-wireDone:
	case <-ctx.Done():
		go s.Close()
		return ctx.Err()
	}

	// Phase 2: in-flight decide fan-outs, then the workers. The write
	// lock is acquired only once every fan-out has released the read
	// side, i.e. once every accepted task has been answered.
	closed := make(chan struct{})
	go func() {
		s.Close()
		close(closed)
	}()
	select {
	case <-closed:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// writeJSON renders a JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v) //nolint:errcheck // client gone; nothing to report to
}

// errorBody is the uniform error payload.
type errorBody struct {
	Error string `json:"error"`
}

// writeError renders a JSON error with the given status.
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorBody{Error: err.Error()})
}

// writeUnavailable renders a 503 with a Retry-After hint — the shape
// drain-aware clients (cmd/loadgen) recognize as "back off or move on".
func writeUnavailable(w http.ResponseWriter, err error) {
	w.Header().Set("Retry-After", "1")
	writeError(w, http.StatusServiceUnavailable, err)
}

// HealthStats is the /v1/healthz payload. Status is "ok" (200),
// "degraded" (503: the self-checker's last audit found a mismatch or
// failed to run) or "draining" (503: graceful shutdown in progress).
type HealthStats struct {
	Status    string  `json:"status"`
	UptimeSec float64 `json:"uptime_sec"`
	DBHash    string  `json:"db_hash"`
	DBGen     uint64  `json:"db_generation"`

	Decide struct {
		Queries           uint64 `json:"queries"`
		CacheHits         uint64 `json:"cache_hits"`
		CacheMisses       uint64 `json:"cache_misses"`
		AdmissionRejected uint64 `json:"admission_rejected"`
		Batches           uint64 `json:"batches"`
		Shards            int    `json:"shards"`
		CacheBounds       int    `json:"cache_capacity_per_shard"`
	} `json:"decide"`
	Wire struct {
		Connections     uint64 `json:"connections"`
		OpenConnections int64  `json:"open_connections"`
		Frames          uint64 `json:"frames"`
		Queries         uint64 `json:"queries"`
		DecodeErrors    uint64 `json:"decode_errors"`
	} `json:"wire"`
	Score struct {
		Requests uint64 `json:"requests"`
	} `json:"score"`
	Sweep struct {
		Jobs        int   `json:"jobs"`
		CacheHits   int64 `json:"cache_hits"`
		CacheMisses int64 `json:"cache_misses"`
	} `json:"sweep"`

	// Checker is the self-checker's latest audit (absent before the first
	// audit).
	Checker *ops.AuditReport `json:"checker,omitempty"`
}

// handleHealthz is GET /v1/healthz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	var h HealthStats
	h.Status = "ok"
	code := http.StatusOK
	if rep, ok := s.checker.Last(); ok {
		h.Checker = &rep
		if !rep.Pass() {
			h.Status = "degraded"
			code = http.StatusServiceUnavailable
		}
	}
	if s.draining.Load() {
		h.Status = "draining"
		code = http.StatusServiceUnavailable
	}
	h.UptimeSec = time.Since(s.started).Seconds()
	h.DBHash = sn.hash
	h.DBGen = sn.gen
	for _, sh := range s.shards {
		h.Decide.Queries += sh.tasks.Load()
		h.Decide.CacheHits += sh.hits.Load()
		h.Decide.CacheMisses += sh.misses.Load()
		h.Decide.AdmissionRejected += sh.admRejects.Load()
		h.Decide.Batches += sh.batches.Load()
	}
	h.Decide.Shards = len(s.shards)
	h.Decide.CacheBounds = s.opt.CacheSize
	h.Wire.Connections = s.wire.conns.Load()
	h.Wire.OpenConnections = s.wire.open.Load()
	h.Wire.Frames = s.wire.frames.Load()
	h.Wire.Queries = s.wire.queries.Load()
	h.Wire.DecodeErrors = s.wire.decodeErrs.Load()
	h.Score.Requests = s.metrics.scoreRequests.Value()
	h.Sweep.Jobs = s.jobs.count()
	h.Sweep.CacheHits, h.Sweep.CacheMisses = s.engine.Cache().Stats()
	writeJSON(w, code, &h)
}

// MetaBench describes one servable benchmark.
type MetaBench struct {
	Name   string `json:"name"`
	Phases int    `json:"phases"`
}

// Meta is the /v1/meta payload: everything a client (the load generator,
// a dashboard) needs to construct valid queries, plus the serving
// database's content version so clients can detect hot-swaps.
type Meta struct {
	NumCores int         `json:"num_cores"`
	LLCAssoc int         `json:"llc_assoc"`
	DVFSGHz  []float64   `json:"dvfs_ghz"`
	Schemes  []string    `json:"schemes"`
	Benches  []MetaBench `json:"benches"`
	Shards   int         `json:"shards"`
	Batch    int         `json:"batch"`

	DBHash   string `json:"db_hash"`
	DBGen    uint64 `json:"db_generation"`
	DBSource string `json:"db_source"`
}

// handleMeta is GET /v1/meta.
func (s *Server) handleMeta(w http.ResponseWriter, r *http.Request) {
	sn := s.snap.Load()
	db := sn.db
	m := Meta{
		NumCores: db.Sys.NumCores,
		LLCAssoc: db.Sys.LLC.Assoc,
		Schemes:  []string{"static", "dvfs", "rm1", "rm2", "rm3", "ucp"},
		Shards:   len(s.shards),
		Batch:    s.opt.Batch,
		DBHash:   sn.hash,
		DBGen:    sn.gen,
		DBSource: sn.source,
	}
	for _, op := range db.Sys.DVFS {
		m.DVFSGHz = append(m.DVFSGHz, op.FreqGHz)
	}
	for _, name := range db.BenchNames() {
		id, _ := db.BenchIDOf(name)
		m.Benches = append(m.Benches, MetaBench{Name: name, Phases: db.Benches[id].Analysis.NumPhases})
	}
	writeJSON(w, http.StatusOK, &m)
}
