// Package equilibrium computes pure Nash equilibria of the collocation
// game the scorer (internal/sched) defines, treating jobs as players
// whose strategies are machine choices — the integer-programming-games
// view of placement ("Integer Programming Games: A Gentle Computational
// Overview"; "The ZERO Regrets Algorithm", PAPERS.md).
//
// The game: N players (jobs, identified by benchmark) choose among M
// identical machines of capacity C. A player's payoff is its machine's
// collocation score — the energy savings the coordinated resource manager
// is predicted to reach on that machine's tenant set, way-allocation
// settings included, with sched.Scorer as the best-response oracle. A
// strategy profile is a pure Nash equilibrium when no player can raise
// its own machine's score by unilaterally moving to a machine with a free
// core.
//
// Solve runs deterministic best-response dynamics: players best-respond
// in a seeded round-robin order until a full round passes without a move
// (the fixed point), with profile-history cycle detection aborting
// non-convergent starts. Every fixed point is then re-verified from
// scratch by the no-improvement certificate (Verify) — the fixed point
// IS a pure NE, checked exhaustively, not assumed from the dynamics'
// bookkeeping. A ZERO-regrets-style master loop explores K seeded starts
// and returns the certified equilibrium with the best fleet objective
// (mean score over occupied machines), i.e. it optimizes fleet energy
// over the sampled equilibrium set. Results are bit-deterministic: fixed
// (players, Config) reproduce the same equilibrium regardless of Workers.
package equilibrium

import (
	"fmt"
	"runtime"
	"sync"

	"qosrma/internal/sched"
	"qosrma/internal/stats"
)

// Config shapes one equilibrium computation.
type Config struct {
	// Machines is the number of machines (strategies before capacity).
	Machines int
	// Capacity is each machine's core count; at most Capacity players can
	// share a machine, and Capacity must not exceed the scorer's width.
	Capacity int
	// Restarts is the number of seeded starts the master loop explores
	// (default 4). The best certified equilibrium across starts wins.
	Restarts int
	// MaxRounds bounds the best-response rounds of one start before it is
	// abandoned as non-convergent (default 64; cycle detection usually
	// fires much earlier).
	MaxRounds int
	// Seed drives every randomized choice (start assignments, player
	// orders); fixed seed, fixed equilibrium.
	Seed uint64
	// Workers bounds the parallel exploration of starts (default
	// GOMAXPROCS). The result is bit-identical for every value.
	Workers int
	// Initial, when non-nil, warm-starts the first start from this
	// player → machine assignment (must be feasible); remaining starts
	// use seeded assignments. The cluster engine passes the fleet's
	// current physical assignment here.
	Initial []int
	// Tol is the payoff-improvement tolerance below which a deviation is
	// not considered profitable (default 1e-12) — the same epsilon the
	// swap descent uses, keeping fixed points stable under float noise.
	Tol float64
}

// Equilibrium is one certified pure Nash equilibrium of the placement
// game.
type Equilibrium struct {
	// Assignment maps each player index to its machine.
	Assignment []int
	// Machines lists each machine's tenants in ascending player order
	// (empty machines keep empty slices).
	Machines [][]string
	// Payoffs is each player's payoff: its machine's collocation score.
	Payoffs []float64
	// Fleet is the master-loop objective: the mean collocation score over
	// occupied machines.
	Fleet float64
	// Rounds is the number of best-response rounds the winning start
	// needed to reach its fixed point.
	Rounds int
	// Start is the index of the seeded start that produced the winner.
	Start int
	// Starts is the number of starts explored.
	Starts int
	// Certified reports that Verify confirmed the no-improvement
	// certificate. Solve only returns certified equilibria.
	Certified bool
}

// withDefaults validates cfg against the oracle and fills defaults.
func (cfg Config) withDefaults(sc *sched.Scorer, players []string) (Config, error) {
	if cfg.Machines < 1 {
		return cfg, fmt.Errorf("equilibrium: need at least one machine, got %d", cfg.Machines)
	}
	if cfg.Capacity < 1 || cfg.Capacity > sc.Cores() {
		return cfg, fmt.Errorf("equilibrium: capacity %d outside 1..%d", cfg.Capacity, sc.Cores())
	}
	if len(players) == 0 {
		return cfg, fmt.Errorf("equilibrium: no players")
	}
	if len(players) > cfg.Machines*cfg.Capacity {
		return cfg, fmt.Errorf("equilibrium: %d players exceed fleet capacity %d",
			len(players), cfg.Machines*cfg.Capacity)
	}
	if cfg.Restarts <= 0 {
		cfg.Restarts = 4
	}
	if cfg.MaxRounds <= 0 {
		cfg.MaxRounds = 64
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Tol <= 0 {
		cfg.Tol = 1e-12
	}
	if cfg.Initial != nil {
		if len(cfg.Initial) != len(players) {
			return cfg, fmt.Errorf("equilibrium: initial assignment has %d entries for %d players",
				len(cfg.Initial), len(players))
		}
		occ := make([]int, cfg.Machines)
		for p, m := range cfg.Initial {
			if m < 0 || m >= cfg.Machines {
				return cfg, fmt.Errorf("equilibrium: player %d starts on machine %d of %d", p, m, cfg.Machines)
			}
			occ[m]++
			if occ[m] > cfg.Capacity {
				return cfg, fmt.Errorf("equilibrium: initial assignment overfills machine %d", m)
			}
		}
	}
	return cfg, nil
}

// game is the per-start dynamics state.
type game struct {
	sc      *sched.Scorer
	players []string
	cfg     Config

	assign []int
	occ    []int
	buf    sched.ScoreBuf
	apps   []string // tenant-list scratch, rebuilt per payoff query
}

// tenantsWith appends machine m's tenants in ascending player order into
// g.apps, with player p's strategy overridden to pm (pass p = -1 to take
// the profile as is). The ascending-index order is the canonical tenant
// order everywhere in this package, so a payoff evaluated for a deviation
// is bit-identical to the machine's score after actually moving.
func (g *game) tenantsWith(m, p, pm int) []string {
	g.apps = g.apps[:0]
	for q, qm := range g.assign {
		if q == p {
			qm = pm
		}
		if qm == m {
			g.apps = append(g.apps, g.players[q])
		}
	}
	return g.apps
}

// payoff scores machine m with player p's strategy overridden to pm.
func (g *game) payoff(m, p, pm int) (float64, error) {
	return g.sc.ScoreInto(g.tenantsWith(m, p, pm), &g.buf)
}

// bestResponse moves player p to its best feasible machine; it reports
// whether p moved. Deviations are profitable only beyond Tol, and ties
// keep the lowest machine index (the current machine wins all ties), so
// the dynamics are deterministic.
func (g *game) bestResponse(p int) (bool, error) {
	cur := g.assign[p]
	curPay, err := g.payoff(cur, -1, 0)
	if err != nil {
		return false, err
	}
	bestM, bestPay := cur, curPay
	for m := 0; m < g.cfg.Machines; m++ {
		if m == cur || g.occ[m] >= g.cfg.Capacity {
			continue
		}
		pay, err := g.payoff(m, p, m)
		if err != nil {
			return false, err
		}
		if pay > bestPay+g.cfg.Tol {
			bestM, bestPay = m, pay
		}
	}
	if bestM == cur {
		return false, nil
	}
	g.occ[cur]--
	g.occ[bestM]++
	g.assign[p] = bestM
	return true, nil
}

// profileKey encodes the assignment for exact cycle detection (two bytes
// per player keeps the key exact for any realistic fleet size).
func profileKey(assign []int) string {
	b := make([]byte, 2*len(assign))
	for i, m := range assign {
		b[2*i] = byte(m)
		b[2*i+1] = byte(m >> 8)
	}
	return string(b)
}

// solveStart runs one seeded start to a certified equilibrium, or reports
// (nil, nil) when the start cycles, exceeds MaxRounds, or fails the
// certificate.
func solveStart(sc *sched.Scorer, players []string, cfg Config, start int) (*Equilibrium, error) {
	rng := stats.NewRNG(stats.SeedFrom(cfg.Seed, fmt.Sprintf("equilibrium/start/%d", start)))
	n := len(players)
	g := &game{sc: sc, players: players, cfg: cfg,
		assign: make([]int, n), occ: make([]int, cfg.Machines)}

	// Initial profile: the caller's warm start for start 0, otherwise a
	// seeded feasible assignment (shuffled machine slots).
	if start == 0 && cfg.Initial != nil {
		copy(g.assign, cfg.Initial)
	} else {
		slots := make([]int, 0, cfg.Machines*cfg.Capacity)
		for m := 0; m < cfg.Machines; m++ {
			for c := 0; c < cfg.Capacity; c++ {
				slots = append(slots, m)
			}
		}
		rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
		copy(g.assign, slots[:n])
	}
	for _, m := range g.assign {
		g.occ[m]++
	}
	order := rng.Perm(n)

	seen := map[string]bool{profileKey(g.assign): true}
	rounds := 0
	for {
		if rounds++; rounds > cfg.MaxRounds {
			return nil, nil // non-convergent start
		}
		moved := false
		for _, p := range order {
			m, err := g.bestResponse(p)
			if err != nil {
				return nil, err
			}
			moved = moved || m
		}
		if !moved {
			break // fixed point: a full round found no profitable deviation
		}
		key := profileKey(g.assign)
		if seen[key] {
			return nil, nil // cycle: abandon, the master loop restarts elsewhere
		}
		seen[key] = true
	}

	ok, err := Verify(sc, players, g.assign, cfg)
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, nil
	}
	eq := &Equilibrium{
		Assignment: g.assign,
		Machines:   tenantLists(players, g.assign, cfg.Machines),
		Payoffs:    make([]float64, n),
		Rounds:     rounds,
		Start:      start,
		Certified:  true,
	}
	var fleetSum float64
	occupied := 0
	for m := 0; m < cfg.Machines; m++ {
		if len(eq.Machines[m]) == 0 {
			continue
		}
		s, err := g.payoff(m, -1, 0)
		if err != nil {
			return nil, err
		}
		fleetSum += s
		occupied++
		for p, pm := range g.assign {
			if pm == m {
				eq.Payoffs[p] = s
			}
		}
	}
	eq.Fleet = fleetSum / float64(occupied)
	return eq, nil
}

// tenantLists derives per-machine tenant lists in ascending player order.
func tenantLists(players []string, assign []int, machines int) [][]string {
	out := make([][]string, machines)
	for p, m := range assign {
		out[m] = append(out[m], players[p])
	}
	return out
}

// Verify checks the no-improvement certificate from scratch: for every
// player and every feasible alternative machine, the unilateral deviation
// payoff must not beat the player's current payoff by more than Tol. It
// shares no state with the dynamics, so a true result is an independent
// proof that assign is a pure Nash equilibrium of the scorer's game.
func Verify(sc *sched.Scorer, players []string, assign []int, cfg Config) (bool, error) {
	cfg, err := cfg.withDefaults(sc, players)
	if err != nil {
		return false, err
	}
	if len(assign) != len(players) {
		return false, fmt.Errorf("equilibrium: assignment has %d entries for %d players",
			len(assign), len(players))
	}
	g := &game{sc: sc, players: players, cfg: cfg,
		assign: assign, occ: make([]int, cfg.Machines)}
	for _, m := range assign {
		if m < 0 || m >= cfg.Machines {
			return false, fmt.Errorf("equilibrium: machine %d out of range", m)
		}
		g.occ[m]++
	}
	for p := range players {
		cur, err := g.payoff(assign[p], -1, 0)
		if err != nil {
			return false, err
		}
		for m := 0; m < cfg.Machines; m++ {
			if m == assign[p] || g.occ[m] >= cfg.Capacity {
				continue
			}
			pay, err := g.payoff(m, p, m)
			if err != nil {
				return false, err
			}
			if pay > cur+cfg.Tol {
				return false, nil
			}
		}
	}
	return true, nil
}

// Solve computes a certified pure Nash equilibrium of the placement game:
// the master loop explores cfg.Restarts seeded starts (in parallel on
// cfg.Workers, bit-identically for any worker count) and returns the
// certified equilibrium with the highest fleet objective, ties broken by
// the lowest start index. It fails when every start cycles or fails the
// certificate — callers with a fallback policy (the cluster engine)
// degrade gracefully; tests assert this never fires on the shipped
// scenarios.
func Solve(sc *sched.Scorer, players []string, cfg Config) (*Equilibrium, error) {
	cfg, err := cfg.withDefaults(sc, players)
	if err != nil {
		return nil, err
	}
	results := make([]*Equilibrium, cfg.Restarts)
	errs := make([]error, cfg.Restarts)
	sem := make(chan struct{}, cfg.Workers)
	var wg sync.WaitGroup
	for r := 0; r < cfg.Restarts; r++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(r int) {
			defer wg.Done()
			defer func() { <-sem }()
			results[r], errs[r] = solveStart(sc, players, cfg, r)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	var best *Equilibrium
	for _, eq := range results {
		if eq == nil {
			continue
		}
		if best == nil || eq.Fleet > best.Fleet {
			best = eq
		}
	}
	if best == nil {
		return nil, fmt.Errorf("equilibrium: no pure Nash equilibrium found in %d starts (raise Restarts/MaxRounds)",
			cfg.Restarts)
	}
	best.Starts = cfg.Restarts
	return best, nil
}
