package equilibrium

import (
	"reflect"
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/sched"
	"qosrma/internal/simdb"
	"qosrma/internal/trace"
)

var (
	dbOnce sync.Once
	dbInst *simdb.DB
	dbErr  error
)

// testDB builds a small 2-core database over a subset of the suite — the
// same shape the cluster engine's tests use, so placement games stay fast
// while still heterogeneous.
func testDB(t *testing.T) *simdb.DB {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping multi-second database build in -short mode")
	}
	dbOnce.Do(func() {
		sys := arch.DefaultSystemConfig(2)
		dbInst, dbErr = simdb.Build(sys, trace.Suite()[:6], simdb.DefaultBuildOptions())
	})
	if dbErr != nil {
		t.Fatal(dbErr)
	}
	return dbInst
}

// feasibleProfiles enumerates every capacity-respecting assignment of n
// players onto machines of the given capacity.
func feasibleProfiles(n, machines, capacity int) [][]int {
	var out [][]int
	assign := make([]int, n)
	occ := make([]int, machines)
	var rec func(p int)
	rec = func(p int) {
		if p == n {
			out = append(out, append([]int(nil), assign...))
			return
		}
		for m := 0; m < machines; m++ {
			if occ[m] == capacity {
				continue
			}
			assign[p] = m
			occ[m]++
			rec(p + 1)
			occ[m]--
		}
	}
	rec(0)
	return out
}

// isNashManual checks the no-deviation property from first principles —
// straight Scorer calls, no package machinery — so the certificate tests
// do not assume Verify itself is correct.
func isNashManual(t *testing.T, sc *sched.Scorer, players []string, assign []int, machines, capacity int, tol float64) bool {
	t.Helper()
	occ := make([]int, machines)
	for _, m := range assign {
		occ[m]++
	}
	tenants := func(m, mover, to int) []string {
		var apps []string
		for p, pm := range assign {
			if p == mover {
				pm = to
			}
			if pm == m {
				apps = append(apps, players[p])
			}
		}
		return apps
	}
	score := func(apps []string) float64 {
		s, err := sc.Score(apps)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	for p := range players {
		cur := score(tenants(assign[p], -1, 0))
		for m := 0; m < machines; m++ {
			if m == assign[p] || occ[m] >= capacity {
				continue
			}
			if score(tenants(m, p, m)) > cur+tol {
				return false
			}
		}
	}
	return true
}

// TestSolveCertificate: Solve's result must be certified, and the
// no-deviation property must hold under an exhaustive manual check that
// shares no code with Verify.
func TestSolveCertificate(t *testing.T) {
	db := testDB(t)
	sc := sched.NewScorer(db)
	players := db.BenchNames()[:5]
	cfg := Config{Machines: 3, Capacity: 2, Seed: 11}
	eq, err := Solve(sc, players, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !eq.Certified {
		t.Fatal("Solve returned an uncertified equilibrium")
	}
	if !isNashManual(t, sc, players, eq.Assignment, cfg.Machines, cfg.Capacity, 1e-12) {
		t.Fatal("certified equilibrium admits a profitable deviation")
	}
	// Structural checks: every player placed once, payoffs match machines.
	occ := make([]int, cfg.Machines)
	for p, m := range eq.Assignment {
		if m < 0 || m >= cfg.Machines {
			t.Fatalf("player %d on machine %d", p, m)
		}
		occ[m]++
		s, err := sc.Score(eq.Machines[m])
		if err != nil {
			t.Fatal(err)
		}
		if eq.Payoffs[p] != s {
			t.Fatalf("player %d payoff %v, machine score %v", p, eq.Payoffs[p], s)
		}
	}
	for m, n := range occ {
		if n > cfg.Capacity {
			t.Fatalf("machine %d overfilled with %d tenants", m, n)
		}
		if n != len(eq.Machines[m]) {
			t.Fatalf("machine %d tenant list has %d entries for %d tenants", m, len(eq.Machines[m]), n)
		}
	}
	if eq.Starts != 4 || eq.Start < 0 || eq.Start >= eq.Starts {
		t.Fatalf("start bookkeeping broken: start %d of %d", eq.Start, eq.Starts)
	}
}

// TestVerifyMatchesExhaustiveCheck sweeps every feasible profile of a
// small game: Verify must agree with the manual first-principles check on
// each one, and the game must contain both equilibria and non-equilibria
// (so the certificate genuinely discriminates).
func TestVerifyMatchesExhaustiveCheck(t *testing.T) {
	db := testDB(t)
	sc := sched.NewScorer(db)
	players := db.BenchNames()[:4]
	cfg := Config{Machines: 3, Capacity: 2, Seed: 1}
	nash, other := 0, 0
	for _, assign := range feasibleProfiles(len(players), cfg.Machines, cfg.Capacity) {
		want := isNashManual(t, sc, players, assign, cfg.Machines, cfg.Capacity, 1e-12)
		got, err := Verify(sc, players, assign, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("Verify(%v) = %v, manual check %v", assign, got, want)
		}
		if want {
			nash++
		} else {
			other++
		}
	}
	if nash == 0 {
		t.Fatal("game has no pure Nash equilibrium profile")
	}
	if other == 0 {
		t.Fatal("every profile is an equilibrium: the certificate discriminates nothing")
	}
}

// TestSolveDeterministic: fixed (players, Config) must reproduce the
// identical equilibrium bit for bit across worker counts and repeated
// runs, and different seeds must run without error.
func TestSolveDeterministic(t *testing.T) {
	db := testDB(t)
	sc := sched.NewScorer(db)
	players := db.BenchNames()
	base := Config{Machines: 4, Capacity: 2, Restarts: 6, Seed: 5}
	var want *Equilibrium
	for _, workers := range []int{1, 2, 8} {
		for rep := 0; rep < 2; rep++ {
			cfg := base
			cfg.Workers = workers
			eq, err := Solve(sc, players, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if want == nil {
				want = eq
				continue
			}
			if !reflect.DeepEqual(eq, want) {
				t.Fatalf("equilibrium depends on Workers=%d rep=%d:\n got %+v\nwant %+v",
					workers, rep, eq, want)
			}
		}
	}
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := base
		cfg.Seed = seed
		if _, err := Solve(sc, players, cfg); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestSolveWarmStart: a warm start that is already an equilibrium must be
// returned unchanged by start 0 (the dynamics find no move), and an
// infeasible warm start must be rejected.
func TestSolveWarmStart(t *testing.T) {
	db := testDB(t)
	sc := sched.NewScorer(db)
	players := db.BenchNames()[:5]
	cfg := Config{Machines: 3, Capacity: 2, Seed: 11}
	eq, err := Solve(sc, players, cfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := cfg
	warm.Initial = eq.Assignment
	warm.Restarts = 1
	again, err := Solve(sc, players, warm)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Assignment, eq.Assignment) {
		t.Fatalf("warm start moved an equilibrium: %v -> %v", eq.Assignment, again.Assignment)
	}
	if again.Rounds != 1 {
		t.Fatalf("equilibrium warm start took %d rounds, want 1", again.Rounds)
	}

	bad := cfg
	bad.Initial = []int{0, 0, 0, 1, 1} // machine 0 over capacity
	if _, err := Solve(sc, players, bad); err == nil {
		t.Fatal("overfull warm start accepted")
	}
	short := cfg
	short.Initial = []int{0, 1}
	if _, err := Solve(sc, players, short); err == nil {
		t.Fatal("short warm start accepted")
	}
}

func TestSolveValidation(t *testing.T) {
	db := testDB(t)
	sc := sched.NewScorer(db)
	players := db.BenchNames()[:3]
	cases := []Config{
		{Machines: 0, Capacity: 2},                          // no machines
		{Machines: 2, Capacity: 0},                          // no capacity
		{Machines: 2, Capacity: 99},                         // beyond the scorer's width
		{Machines: 1, Capacity: 1},                          // players exceed fleet capacity
		{Machines: 2, Capacity: 2, Initial: []int{0, 5, 0}}, // machine out of range
	}
	for i, cfg := range cases {
		if _, err := Solve(sc, players, cfg); err == nil {
			t.Fatalf("case %d: invalid config accepted: %+v", i, cfg)
		}
	}
	if _, err := Solve(sc, nil, Config{Machines: 2, Capacity: 2}); err == nil {
		t.Fatal("empty player list accepted")
	}
	if _, err := Verify(sc, players, []int{0}, Config{Machines: 2, Capacity: 2}); err == nil {
		t.Fatal("short assignment accepted by Verify")
	}
}
