// Package trace implements the synthetic benchmark substrate that replaces
// the SPEC CPU2006 whole-program Pinballs used by the paper.
//
// Each benchmark is a deterministic generative model: a sequence of
// 100M-instruction slices, where every slice is drawn from one of a small
// set of phase behaviours. A behaviour specifies the statistical properties
// that the paper's resource-management algorithms actually observe through
// hardware counters and the auxiliary tag directory:
//
//   - LLC access intensity (accesses per kilo-instruction),
//   - locality structure (hot/warm working sets + streaming fraction),
//     which determines the cache-miss-versus-ways curve,
//   - miss burstiness and inter-miss dependences, which determine the
//     memory-level parallelism achievable for each core size,
//   - dependency-limited ILP and branch behaviour, which determine the
//     compute component of CPI for each core size.
//
// The generator produces a representative memory-access sample stream and a
// basic-block-vector-like signature per slice, feeding the detailed
// simulator (internal/simdb) and the SimPoint analysis (internal/simpoint)
// respectively, mirroring the methodology of the thesis (Chapter 2).
package trace

import "qosrma/internal/stats"

// SliceInstructions is the fixed slice ("interval") length used throughout
// the paper: resource-management decisions happen at this granularity.
const SliceInstructions = 100_000_000

// Behavior is one program phase's generative specification.
//
// Behavior must stay a comparable value type (scalar fields only): the
// detailed simulator's process-wide phase-profile cache (internal/simdb)
// keys on the jittered spec by value, which is what makes "same behaviour
// ⇒ same profile" sharing across databases sound. The compile-time guard
// below enforces this.
type Behavior struct {
	// Name identifies the behaviour within its benchmark (for debugging).
	Name string

	// IlpIPC is the dependency-limited instructions-per-cycle the phase can
	// sustain given unlimited issue width; the effective width is
	// min(IlpIPC, core width).
	IlpIPC float64

	// BranchMPKI is branch mispredictions per kilo-instruction.
	BranchMPKI float64

	// APKI is LLC accesses (i.e. L2 misses) per kilo-instruction.
	APKI float64

	// HotLines and WarmLines are the sizes, in cache lines, of the two
	// re-referenced working sets. PHot and PWarm are the probabilities that
	// an access falls in each; the remainder streams through new lines.
	HotLines, WarmLines int
	PHot, PWarm         float64

	// PBurst is the probability that an access opens a burst; BurstLen is
	// the mean number of accesses per burst; BurstGap is the mean
	// instruction gap between accesses inside a burst. Bursty, independent
	// accesses are what larger ROB/MSHR configurations convert into MLP.
	PBurst   float64
	BurstLen float64
	BurstGap float64

	// PDep is the probability that an access depends on the previous
	// in-flight access (pointer chasing); dependent misses cannot overlap.
	PDep float64
}

// Compile-time guards: Behavior and SampleParams are used as (parts of)
// cache-map keys; adding a slice/map/function field would silently turn
// every lookup into a runtime panic.
var (
	_ = map[Behavior]struct{}{}
	_ = map[SampleParams]struct{}{}
)

// Access is one sampled LLC access.
type Access struct {
	Line  uint32 // cache-line id within the application's address space
	Instr uint32 // instruction index within the sample window
	Dep   bool   // true if this access depends on the previous access
}

// streamWrap bounds the streaming region so address space stays finite
// (2^22 lines = 256 MiB of streamed data before wrap).
const streamWrap = 1 << 22

// SampleParams controls the size of the representative sample stream.
type SampleParams struct {
	// Accesses is the number of measured accesses to generate.
	Accesses int
	// WarmupAccesses precede the measured stream (cache warm-up), mirroring
	// the 100M-instruction warm-up slices of the thesis methodology.
	WarmupAccesses int
}

// DefaultSampleParams returns the sample sizes used to build the
// simulation-results database.
func DefaultSampleParams() SampleParams {
	return SampleParams{Accesses: 48_000, WarmupAccesses: 16_000}
}

// Stream is a generated sample access stream plus the implied instruction
// window it covers.
type Stream struct {
	Warmup      []Access // warm-up prefix (not measured)
	Measured    []Access
	WindowInstr float64 // instructions spanned by the measured stream
}

// ScaleToSlice returns the factor that scales counts measured on the sample
// window up to one full 100M-instruction slice.
func (s *Stream) ScaleToSlice() float64 {
	if s.WindowInstr <= 0 {
		return 0
	}
	return SliceInstructions / s.WindowInstr
}

// Generate produces the deterministic sample stream for the behaviour using
// the supplied seed. Identical (behaviour, seed, params) always produce an
// identical stream.
func (b *Behavior) Generate(seed uint64, p SampleParams) *Stream {
	rng := stats.NewRNG(seed)
	total := p.WarmupAccesses + p.Accesses
	accs := make([]Access, total)

	// Solve the out-of-burst gap so the overall access rate matches APKI.
	// Mean gap over all accesses must be 1000/APKI instructions. A fraction
	// fb of accesses are inside bursts with mean gap BurstGap.
	meanGap := 1000.0 / b.APKI
	fb := b.burstFraction()
	gapNormal := (meanGap - fb*b.BurstGap) / (1 - fb)
	if gapNormal < 1 {
		gapNormal = 1
	}

	var (
		instr      float64
		burstLeft  int
		streamNext = uint32(b.HotLines + b.WarmLines)
	)
	for i := 0; i < total; i++ {
		// Advance the instruction clock.
		if burstLeft > 0 {
			instr += 1 + rng.Exp(b.BurstGap)
			burstLeft--
		} else {
			instr += 1 + rng.Exp(gapNormal)
			if rng.Float64() < b.PBurst {
				burstLeft = 1 + rng.Geometric(1/maxf(b.BurstLen, 1))
			}
		}

		// Pick the address region.
		var line uint32
		r := rng.Float64()
		switch {
		case r < b.PHot && b.HotLines > 0:
			line = uint32(rng.Intn(b.HotLines))
		case r < b.PHot+b.PWarm && b.WarmLines > 0:
			line = uint32(b.HotLines + rng.Intn(b.WarmLines))
		default:
			line = streamNext
			streamNext++
			if streamNext >= streamWrap {
				streamNext = uint32(b.HotLines + b.WarmLines)
			}
		}

		accs[i] = Access{
			Line:  line,
			Instr: uint32(instr),
			Dep:   rng.Float64() < b.PDep,
		}
	}

	// The measured window length in instructions is the span of the
	// measured suffix.
	warm := accs[:p.WarmupAccesses]
	meas := accs[p.WarmupAccesses:]
	var window float64
	if len(meas) > 0 {
		start := float64(meas[0].Instr)
		end := float64(meas[len(meas)-1].Instr)
		window = end - start
		if window < 1 {
			window = 1
		}
	}
	return &Stream{Warmup: warm, Measured: meas, WindowInstr: window}
}

// burstFraction estimates the fraction of accesses that are inside bursts.
func (b *Behavior) burstFraction() float64 {
	if b.PBurst <= 0 || b.BurstLen <= 0 {
		return 0
	}
	// Each non-burst access opens a burst with probability PBurst; a burst
	// contributes BurstLen accesses per opener on average.
	f := b.PBurst * b.BurstLen / (1 + b.PBurst*b.BurstLen)
	if !(f < 0.95) { // also catches NaN from overflowing products
		f = 0.95
	}
	if f < 0 {
		f = 0
	}
	return f
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// NumSignatureBlocks is the dimensionality of the synthetic basic-block
// vector used as the SimPoint clustering feature.
const NumSignatureBlocks = 32

// Signature returns the behaviour's characteristic basic-block-vector-like
// signature: a sparse distribution over synthetic basic blocks derived
// deterministically from the behaviour name. Slices of the same behaviour
// produce nearby signatures (after per-slice jitter), so k-means clustering
// recovers the phase structure the way SimPoint does.
func (b *Behavior) Signature() [NumSignatureBlocks]float64 {
	rng := stats.NewRNG(stats.SeedFrom(0x5157_0001, b.Name))
	var sig [NumSignatureBlocks]float64
	// Concentrate mass on a handful of blocks, like real BBVs.
	var sum float64
	for i := 0; i < 6; i++ {
		blk := rng.Intn(NumSignatureBlocks)
		w := rng.Exp(1) + 0.2
		sig[blk] += w
		sum += w
	}
	for i := range sig {
		sig[i] /= sum
	}
	return sig
}
