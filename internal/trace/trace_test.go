package trace

import (
	"math"
	"testing"
	"testing/quick"

	"qosrma/internal/stats"
)

func TestSuiteWellFormed(t *testing.T) {
	suite := Suite()
	if len(suite) != 20 {
		t.Fatalf("suite size = %d, want 20", len(suite))
	}
	names := make(map[string]bool)
	for _, b := range suite {
		if names[b.Name] {
			t.Fatalf("duplicate benchmark %q", b.Name)
		}
		names[b.Name] = true
		if b.NumSlices() < 200 {
			t.Errorf("%s: only %d slices, want a long-running program", b.Name, b.NumSlices())
		}
		if len(b.Behaviors) == 0 {
			t.Fatalf("%s: no behaviours", b.Name)
		}
		for i, idx := range b.SliceBehavior {
			if idx < 0 || idx >= len(b.Behaviors) {
				t.Fatalf("%s: slice %d references behaviour %d", b.Name, i, idx)
			}
		}
		for _, bh := range b.Behaviors {
			if bh.APKI <= 0 || bh.IlpIPC <= 0 {
				t.Errorf("%s/%s: non-positive APKI or IlpIPC", b.Name, bh.Name)
			}
			if bh.PHot+bh.PWarm > 1 {
				t.Errorf("%s/%s: PHot+PWarm > 1", b.Name, bh.Name)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("mcf") == nil {
		t.Fatal("mcf missing")
	}
	if ByName("doesnotexist") != nil {
		t.Fatal("unexpected benchmark found")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	b := ByName("mcf")
	p := SampleParams{Accesses: 2000, WarmupAccesses: 500}
	s1 := b.Behaviors[0].Generate(b.StreamSeed(0), p)
	s2 := b.Behaviors[0].Generate(b.StreamSeed(0), p)
	if len(s1.Measured) != len(s2.Measured) {
		t.Fatal("lengths differ")
	}
	for i := range s1.Measured {
		if s1.Measured[i] != s2.Measured[i] {
			t.Fatalf("streams diverge at %d", i)
		}
	}
}

func TestGenerateAPKIMatches(t *testing.T) {
	for _, name := range []string{"mcf", "libquantum", "hmmer", "bzip2"} {
		b := ByName(name)
		bh := b.Behaviors[0]
		s := bh.Generate(b.StreamSeed(0), SampleParams{Accesses: 40000, WarmupAccesses: 1000})
		gotAPKI := float64(len(s.Measured)) / s.WindowInstr * 1000
		if rel := math.Abs(gotAPKI-bh.APKI) / bh.APKI; rel > 0.10 {
			t.Errorf("%s: generated APKI %.2f vs spec %.2f (rel err %.2f)",
				name, gotAPKI, bh.APKI, rel)
		}
	}
}

func TestGenerateInstrMonotonic(t *testing.T) {
	b := ByName("soplex")
	s := b.Behaviors[0].Generate(b.StreamSeed(0), SampleParams{Accesses: 5000, WarmupAccesses: 100})
	prev := uint32(0)
	for i, a := range s.Measured {
		if a.Instr < prev {
			t.Fatalf("instruction index decreased at %d", i)
		}
		prev = a.Instr
	}
}

func TestGenerateRegionShares(t *testing.T) {
	b := ByName("mcf")
	bh := b.Behaviors[0]
	s := bh.Generate(b.StreamSeed(0), SampleParams{Accesses: 50000, WarmupAccesses: 0})
	var hot, warm, stream int
	for _, a := range s.Measured {
		switch {
		case int(a.Line) < bh.HotLines:
			hot++
		case int(a.Line) < bh.HotLines+bh.WarmLines:
			warm++
		default:
			stream++
		}
	}
	n := float64(len(s.Measured))
	// Streamed lines wrap back into [HotLines+WarmLines, wrap), so hot/warm
	// counts here slightly overestimate only if wrap occurred (it cannot at
	// this stream length). Tolerances are loose statistical checks.
	if got := float64(hot) / n; math.Abs(got-bh.PHot) > 0.02 {
		t.Errorf("hot share %.3f, want ~%.2f", got, bh.PHot)
	}
	if got := float64(warm) / n; math.Abs(got-bh.PWarm) > 0.02 {
		t.Errorf("warm share %.3f, want ~%.2f", got, bh.PWarm)
	}
}

func TestStreamingLinesAreFresh(t *testing.T) {
	b := ByName("libquantum")
	bh := b.Behaviors[0]
	s := bh.Generate(b.StreamSeed(0), SampleParams{Accesses: 20000, WarmupAccesses: 0})
	seen := make(map[uint32]int)
	boundary := uint32(bh.HotLines + bh.WarmLines)
	for _, a := range s.Measured {
		if a.Line >= boundary {
			seen[a.Line]++
		}
	}
	for line, count := range seen {
		if count > 1 {
			t.Fatalf("streamed line %d repeated %d times before wrap", line, count)
		}
	}
}

func TestJitterDeterministicAndBounded(t *testing.T) {
	b := ByName("gcc")
	for i := 0; i < 100; i++ {
		j1, j2 := b.Jitter(i), b.Jitter(i)
		if j1 != j2 {
			t.Fatalf("jitter not deterministic at slice %d", i)
		}
		if j1.APKIScale < 0.9 || j1.APKIScale > 1.1 {
			t.Fatalf("APKI jitter out of bounds: %v", j1.APKIScale)
		}
		if j1.HotScale < 0.85 || j1.HotScale > 1.15 {
			t.Fatalf("hot jitter out of bounds: %v", j1.HotScale)
		}
	}
}

func TestSliceBehaviorSpecAppliesJitter(t *testing.T) {
	b := ByName("gcc")
	base := b.Behaviors[b.SliceBehavior[0]]
	spec := b.SliceBehaviorSpec(0)
	if spec.APKI == base.APKI && spec.HotLines == base.HotLines && spec.IlpIPC == base.IlpIPC {
		t.Fatal("jitter had no effect (statistically impossible)")
	}
	if spec.HotLines < 1 {
		t.Fatal("hot lines must stay positive")
	}
}

func TestSignatureIsDistribution(t *testing.T) {
	for _, b := range Suite() {
		for i := 0; i < b.NumSlices(); i += 97 {
			sig := b.SliceSignature(i)
			sum := 0.0
			for _, v := range sig {
				if v < 0 {
					t.Fatalf("%s slice %d: negative signature component", b.Name, i)
				}
				sum += v
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("%s slice %d: signature sums to %v", b.Name, i, sum)
			}
		}
	}
}

func TestSignaturesSeparateBehaviors(t *testing.T) {
	b := ByName("gcc")
	// Distance between slices of the same behaviour must be much smaller
	// than between different behaviours.
	dist := func(a, c [NumSignatureBlocks]float64) float64 {
		var d float64
		for i := range a {
			diff := a[i] - c[i]
			d += diff * diff
		}
		return math.Sqrt(d)
	}
	// slices 0..89 are behaviour 0; 90..199 behaviour 1 (per suite segments)
	same := dist(b.SliceSignature(0), b.SliceSignature(5))
	diff := dist(b.SliceSignature(0), b.SliceSignature(95))
	if same >= diff {
		t.Fatalf("intra-phase distance %v >= inter-phase distance %v", same, diff)
	}
}

func TestScaleToSlice(t *testing.T) {
	s := &Stream{WindowInstr: 2_000_000}
	if got := s.ScaleToSlice(); got != 50 {
		t.Fatalf("ScaleToSlice = %v, want 50", got)
	}
	empty := &Stream{}
	if empty.ScaleToSlice() != 0 {
		t.Fatal("empty stream should scale to 0")
	}
}

func TestBurstFractionBounds(t *testing.T) {
	f := func(pb, bl float64) bool {
		b := Behavior{PBurst: math.Abs(pb), BurstLen: math.Abs(bl)}
		fr := b.burstFraction()
		return fr >= 0 && fr <= 0.95
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGenerateAlwaysWellFormed(t *testing.T) {
	f := func(seed uint64, apkiRaw, hotRaw uint16) bool {
		bh := Behavior{
			Name:   "q",
			IlpIPC: 2, BranchMPKI: 1,
			APKI:     0.2 + float64(apkiRaw%300)/10,
			HotLines: 1 + int(hotRaw%5000),
			PHot:     0.5, PWarm: 0,
			PBurst: 0.3, BurstLen: 5, BurstGap: 8, PDep: 0.2,
		}
		s := bh.Generate(seed, SampleParams{Accesses: 300, WarmupAccesses: 50})
		if len(s.Measured) != 300 || len(s.Warmup) != 50 {
			return false
		}
		return s.WindowInstr >= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestTotalInstructions(t *testing.T) {
	b := ByName("lbm")
	want := float64(b.NumSlices()) * 100e6
	if b.TotalInstructions() != want {
		t.Fatalf("TotalInstructions = %v, want %v", b.TotalInstructions(), want)
	}
}

func TestStreamSeedsDifferAcrossBehaviors(t *testing.T) {
	b := ByName("gcc")
	s0, s1 := b.StreamSeed(0), b.StreamSeed(1)
	if s0 == s1 {
		t.Fatal("behaviour stream seeds collide")
	}
	_ = stats.NewRNG(s0) // seeds must be valid RNG inputs
}
