package trace

import (
	"fmt"

	"qosrma/internal/stats"
)

// Benchmark is a full synthetic application: a named sequence of slices,
// each drawn from one of the benchmark's behaviours, plus a seed that makes
// every derived stream deterministic.
type Benchmark struct {
	Name      string
	Seed      uint64
	Behaviors []Behavior
	// SliceBehavior[i] is the behaviour index generating slice i. This is
	// the generative ground truth; the SimPoint analysis reconstructs an
	// approximation of it from slice signatures.
	SliceBehavior []int
}

// NumSlices returns the total number of 100M-instruction slices.
func (b *Benchmark) NumSlices() int { return len(b.SliceBehavior) }

// TotalInstructions returns the benchmark's full dynamic instruction count.
func (b *Benchmark) TotalInstructions() float64 {
	return float64(b.NumSlices()) * SliceInstructions
}

// SliceJitter captures the small per-slice deviation from the phase's
// representative behaviour. The thesis notes that its framework cannot
// capture intra-phase variation; we generate it anyway so that the
// clustering step has realistic input, and so that "perfect" models remain
// slightly imperfect at slice granularity.
type SliceJitter struct {
	APKIScale float64
	HotScale  float64
	IPCScale  float64
}

// Jitter returns the deterministic jitter for slice i.
func (b *Benchmark) Jitter(i int) SliceJitter {
	rng := stats.NewRNG(stats.SeedFrom(b.Seed, fmt.Sprintf("jitter/%d", i)))
	return SliceJitter{
		APKIScale: clamp(rng.Norm(1, 0.03), 0.9, 1.1),
		HotScale:  clamp(rng.Norm(1, 0.04), 0.85, 1.15),
		IPCScale:  clamp(rng.Norm(1, 0.02), 0.93, 1.07),
	}
}

// SliceBehaviorSpec returns the effective behaviour for slice i: the phase
// behaviour with the slice's jitter applied.
func (b *Benchmark) SliceBehaviorSpec(i int) Behavior {
	spec := b.Behaviors[b.SliceBehavior[i]]
	j := b.Jitter(i)
	spec.APKI *= j.APKIScale
	spec.HotLines = int(float64(spec.HotLines) * j.HotScale)
	if spec.HotLines < 1 {
		spec.HotLines = 1
	}
	spec.IlpIPC *= j.IPCScale
	return spec
}

// SliceSignature returns the BBV-like feature vector for slice i: the
// behaviour signature perturbed by deterministic noise.
func (b *Benchmark) SliceSignature(i int) [NumSignatureBlocks]float64 {
	sig := b.Behaviors[b.SliceBehavior[i]].Signature()
	rng := stats.NewRNG(stats.SeedFrom(b.Seed, fmt.Sprintf("sig/%d", i)))
	var sum float64
	for k := range sig {
		sig[k] = maxf(0, sig[k]+rng.Norm(0, 0.004))
		sum += sig[k]
	}
	if sum > 0 {
		for k := range sig {
			sig[k] /= sum
		}
	}
	return sig
}

// StreamSeed returns the deterministic seed for a behaviour's sample stream.
func (b *Benchmark) StreamSeed(behaviorIdx int) uint64 {
	return stats.SeedFrom(b.Seed, "stream/"+b.Behaviors[behaviorIdx].Name)
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// segments builds a slice-behaviour sequence from (behaviour index, count)
// pairs, mimicking the phase structure of long-running applications.
func segments(pairs ...[2]int) []int {
	var out []int
	for _, p := range pairs {
		for i := 0; i < p[1]; i++ {
			out = append(out, p[0])
		}
	}
	return out
}
