package trace

import (
	"sync"

	"qosrma/internal/stats"
)

// Suite returns the 20-application synthetic benchmark suite modeled after
// SPEC CPU2006. Names follow the SPEC programs whose published behaviour
// each model imitates; all parameters are synthetic.
//
// Category intent (verified empirically by internal/workload, which
// categorizes from measurements exactly as the paper does):
//
//	memory-intensive + cache-sensitive:   mcf, omnetpp, soplex, sphinx3, xalancbmk
//	memory-intensive + cache-insensitive: libquantum, lbm, milc, bwaves, leslie3d
//	compute-intensive + cache-sensitive:  bzip2, astar, h264ref, gcc
//	compute-intensive + cache-insensitive: hmmer, namd, povray, sjeng, gamess, perlbench
//
// Parallelism-sensitive (bursty, mostly independent misses): soplex,
// sphinx3, libquantum, lbm, milc, bwaves, leslie3d, gcc. Parallelism-
// insensitive: the pointer chasers (mcf, omnetpp, xalancbmk, astar) and the
// compute-bound programs.
//
// The suite is constructed once per process and memoized; Suite returns a
// fresh top-level slice over the shared, immutable *Benchmark values, so
// repeated calls (facade listings, database builds) cost nothing. Callers
// must treat the pointed-to benchmarks as read-only.
func Suite() []*Benchmark {
	return append([]*Benchmark(nil), cachedSuite()...)
}

var cachedSuite = sync.OnceValue(buildSuite)

// suiteByName indexes the memoized suite for ByName lookups.
var suiteByName = sync.OnceValue(func() map[string]*Benchmark {
	m := make(map[string]*Benchmark)
	for _, b := range cachedSuite() {
		m[b.Name] = b
	}
	return m
})

func buildSuite() []*Benchmark {
	var suite []*Benchmark
	add := func(name string, slices []int, behaviors ...Behavior) {
		suite = append(suite, &Benchmark{
			Name:          name,
			Seed:          stats.SeedFrom(0x51_2006, name),
			Behaviors:     behaviors,
			SliceBehavior: slices,
		})
	}

	// ---- memory-intensive, cache-sensitive, parallelism-insensitive ----

	add("mcf",
		segments([2]int{0, 120}, [2]int{1, 260}, [2]int{0, 90}, [2]int{1, 210}),
		Behavior{Name: "mcf/assign", IlpIPC: 1.4, BranchMPKI: 6.5, APKI: 28,
			HotLines: 1800, WarmLines: 4200, PHot: 0.44, PWarm: 0.44,
			PBurst: 0.15, BurstLen: 3, BurstGap: 30, PDep: 0.80},
		Behavior{Name: "mcf/simplex", IlpIPC: 1.6, BranchMPKI: 5.0, APKI: 22,
			HotLines: 1500, WarmLines: 3600, PHot: 0.46, PWarm: 0.42,
			PBurst: 0.18, BurstLen: 3, BurstGap: 25, PDep: 0.75})

	add("omnetpp",
		segments([2]int{0, 420}, [2]int{1, 80}, [2]int{0, 300}),
		Behavior{Name: "omnetpp/sim", IlpIPC: 1.8, BranchMPKI: 6.0, APKI: 16,
			HotLines: 1600, WarmLines: 3800, PHot: 0.45, PWarm: 0.43,
			PBurst: 0.12, BurstLen: 3, BurstGap: 28, PDep: 0.70},
		Behavior{Name: "omnetpp/stats", IlpIPC: 2.4, BranchMPKI: 3.0, APKI: 7,
			HotLines: 1200, WarmLines: 3000, PHot: 0.60, PWarm: 0.25,
			PBurst: 0.10, BurstLen: 3, BurstGap: 30, PDep: 0.55})

	// ---- memory-intensive, cache-sensitive, parallelism-sensitive ----

	add("soplex",
		segments([2]int{0, 260}, [2]int{1, 160}, [2]int{0, 220}),
		Behavior{Name: "soplex/price", IlpIPC: 2.2, BranchMPKI: 2.2, APKI: 18,
			HotLines: 1400, WarmLines: 4000, PHot: 0.40, PWarm: 0.48,
			PBurst: 0.35, BurstLen: 8, BurstGap: 8, PDep: 0.12},
		Behavior{Name: "soplex/factor", IlpIPC: 2.8, BranchMPKI: 1.4, APKI: 11,
			HotLines: 1200, WarmLines: 3200, PHot: 0.44, PWarm: 0.44,
			PBurst: 0.40, BurstLen: 9, BurstGap: 7, PDep: 0.10})

	add("sphinx3",
		segments([2]int{0, 520}, [2]int{1, 140}, [2]int{0, 340}),
		Behavior{Name: "sphinx3/gauss", IlpIPC: 2.6, BranchMPKI: 3.2, APKI: 11,
			HotLines: 1100, WarmLines: 3800, PHot: 0.45, PWarm: 0.43,
			PBurst: 0.30, BurstLen: 7, BurstGap: 10, PDep: 0.15},
		Behavior{Name: "sphinx3/search", IlpIPC: 2.1, BranchMPKI: 4.5, APKI: 8,
			HotLines: 1000, WarmLines: 3600, PHot: 0.52, PWarm: 0.36,
			PBurst: 0.25, BurstLen: 6, BurstGap: 12, PDep: 0.22})

	add("xalancbmk",
		segments([2]int{0, 380}, [2]int{1, 120}, [2]int{0, 240}),
		Behavior{Name: "xalan/tmpl", IlpIPC: 2.0, BranchMPKI: 5.2, APKI: 12,
			HotLines: 1300, WarmLines: 3400, PHot: 0.50, PWarm: 0.38,
			PBurst: 0.12, BurstLen: 3, BurstGap: 26, PDep: 0.65},
		Behavior{Name: "xalan/parse", IlpIPC: 2.3, BranchMPKI: 4.0, APKI: 8,
			HotLines: 1000, WarmLines: 3500, PHot: 0.58, PWarm: 0.32,
			PBurst: 0.10, BurstLen: 3, BurstGap: 30, PDep: 0.60})

	// ---- memory-intensive, cache-insensitive, parallelism-sensitive ----

	add("libquantum",
		segments([2]int{0, 680}, [2]int{1, 140}),
		Behavior{Name: "libq/gate", IlpIPC: 3.0, BranchMPKI: 0.5, APKI: 26,
			HotLines: 200, WarmLines: 0, PHot: 0.12, PWarm: 0,
			PBurst: 0.50, BurstLen: 12, BurstGap: 5, PDep: 0.03},
		Behavior{Name: "libq/toffoli", IlpIPC: 3.3, BranchMPKI: 0.4, APKI: 21,
			HotLines: 160, WarmLines: 0, PHot: 0.14, PWarm: 0,
			PBurst: 0.55, BurstLen: 13, BurstGap: 5, PDep: 0.03})

	add("lbm",
		segments([2]int{0, 760}),
		Behavior{Name: "lbm/stream", IlpIPC: 3.4, BranchMPKI: 0.3, APKI: 22,
			HotLines: 150, WarmLines: 0, PHot: 0.15, PWarm: 0,
			PBurst: 0.45, BurstLen: 10, BurstGap: 6, PDep: 0.05})

	add("milc",
		segments([2]int{0, 300}, [2]int{1, 180}, [2]int{0, 260}),
		Behavior{Name: "milc/mult", IlpIPC: 2.8, BranchMPKI: 0.6, APKI: 17,
			HotLines: 200, WarmLines: 0, PHot: 0.20, PWarm: 0,
			PBurst: 0.40, BurstLen: 8, BurstGap: 8, PDep: 0.08},
		Behavior{Name: "milc/gauge", IlpIPC: 3.1, BranchMPKI: 0.5, APKI: 13,
			HotLines: 180, WarmLines: 0, PHot: 0.24, PWarm: 0,
			PBurst: 0.42, BurstLen: 9, BurstGap: 7, PDep: 0.07})

	add("bwaves",
		segments([2]int{0, 840}),
		Behavior{Name: "bwaves/solve", IlpIPC: 3.6, BranchMPKI: 0.4, APKI: 19,
			HotLines: 150, WarmLines: 0, PHot: 0.18, PWarm: 0,
			PBurst: 0.50, BurstLen: 12, BurstGap: 5, PDep: 0.04})

	add("leslie3d",
		segments([2]int{0, 560}, [2]int{1, 120}),
		Behavior{Name: "leslie/flux", IlpIPC: 3.2, BranchMPKI: 0.8, APKI: 14,
			HotLines: 250, WarmLines: 0, PHot: 0.22, PWarm: 0,
			PBurst: 0.40, BurstLen: 9, BurstGap: 7, PDep: 0.06},
		Behavior{Name: "leslie/bc", IlpIPC: 2.9, BranchMPKI: 1.2, APKI: 9,
			HotLines: 220, WarmLines: 0, PHot: 0.30, PWarm: 0,
			PBurst: 0.35, BurstLen: 8, BurstGap: 9, PDep: 0.08})

	// ---- compute-intensive, cache-sensitive ----

	add("bzip2",
		segments([2]int{0, 180}, [2]int{1, 160}, [2]int{0, 150}, [2]int{1, 140}),
		Behavior{Name: "bzip2/compress", IlpIPC: 2.4, BranchMPKI: 6.0, APKI: 5,
			HotLines: 1000, WarmLines: 3800, PHot: 0.50, PWarm: 0.38,
			PBurst: 0.20, BurstLen: 4, BurstGap: 16, PDep: 0.30},
		Behavior{Name: "bzip2/sort", IlpIPC: 2.0, BranchMPKI: 8.0, APKI: 6.5,
			HotLines: 1200, WarmLines: 4200, PHot: 0.46, PWarm: 0.40,
			PBurst: 0.18, BurstLen: 4, BurstGap: 18, PDep: 0.35})

	add("astar",
		segments([2]int{0, 460}, [2]int{1, 140}),
		Behavior{Name: "astar/path", IlpIPC: 1.9, BranchMPKI: 8.5, APKI: 6,
			HotLines: 1500, WarmLines: 6500, PHot: 0.48, PWarm: 0.36,
			PBurst: 0.10, BurstLen: 3, BurstGap: 28, PDep: 0.70},
		Behavior{Name: "astar/way", IlpIPC: 2.1, BranchMPKI: 7.0, APKI: 4.5,
			HotLines: 1200, WarmLines: 4000, PHot: 0.54, PWarm: 0.32,
			PBurst: 0.10, BurstLen: 3, BurstGap: 30, PDep: 0.65})

	add("h264ref",
		segments([2]int{0, 520}, [2]int{1, 180}),
		Behavior{Name: "h264/me", IlpIPC: 3.8, BranchMPKI: 3.0, APKI: 3.5,
			HotLines: 1000, WarmLines: 4000, PHot: 0.55, PWarm: 0.35,
			PBurst: 0.25, BurstLen: 5, BurstGap: 12, PDep: 0.25},
		Behavior{Name: "h264/dct", IlpIPC: 4.4, BranchMPKI: 1.8, APKI: 2.2,
			HotLines: 800, WarmLines: 2500, PHot: 0.62, PWarm: 0.30,
			PBurst: 0.30, BurstLen: 5, BurstGap: 10, PDep: 0.20})

	add("gcc",
		segments([2]int{0, 90}, [2]int{1, 110}, [2]int{2, 100}, [2]int{0, 70},
			[2]int{1, 90}, [2]int{2, 80}),
		Behavior{Name: "gcc/parse", IlpIPC: 2.3, BranchMPKI: 7.5, APKI: 5,
			HotLines: 1400, WarmLines: 4200, PHot: 0.48, PWarm: 0.34,
			PBurst: 0.22, BurstLen: 5, BurstGap: 12, PDep: 0.30},
		Behavior{Name: "gcc/opt", IlpIPC: 2.8, BranchMPKI: 5.5, APKI: 8,
			HotLines: 1800, WarmLines: 5200, PHot: 0.42, PWarm: 0.36,
			PBurst: 0.28, BurstLen: 6, BurstGap: 10, PDep: 0.25},
		Behavior{Name: "gcc/regalloc", IlpIPC: 2.5, BranchMPKI: 6.0, APKI: 6.5,
			HotLines: 1600, WarmLines: 4800, PHot: 0.45, PWarm: 0.35,
			PBurst: 0.25, BurstLen: 5, BurstGap: 11, PDep: 0.28})

	// ---- compute-intensive, cache-insensitive ----

	add("hmmer",
		segments([2]int{0, 640}),
		Behavior{Name: "hmmer/viterbi", IlpIPC: 4.5, BranchMPKI: 1.5, APKI: 0.8,
			HotLines: 500, WarmLines: 0, PHot: 0.92, PWarm: 0,
			PBurst: 0.15, BurstLen: 4, BurstGap: 20, PDep: 0.20})

	add("namd",
		segments([2]int{0, 580}, [2]int{1, 100}),
		Behavior{Name: "namd/force", IlpIPC: 4.2, BranchMPKI: 0.9, APKI: 0.6,
			HotLines: 700, WarmLines: 0, PHot: 0.90, PWarm: 0,
			PBurst: 0.20, BurstLen: 5, BurstGap: 16, PDep: 0.10},
		Behavior{Name: "namd/pairlist", IlpIPC: 3.6, BranchMPKI: 1.6, APKI: 1.4,
			HotLines: 900, WarmLines: 0, PHot: 0.82, PWarm: 0,
			PBurst: 0.22, BurstLen: 5, BurstGap: 15, PDep: 0.15})

	add("povray",
		segments([2]int{0, 700}),
		Behavior{Name: "povray/trace", IlpIPC: 3.9, BranchMPKI: 2.5, APKI: 0.4,
			HotLines: 400, WarmLines: 0, PHot: 0.95, PWarm: 0,
			PBurst: 0.10, BurstLen: 3, BurstGap: 24, PDep: 0.15})

	add("sjeng",
		segments([2]int{0, 560}),
		Behavior{Name: "sjeng/search", IlpIPC: 2.8, BranchMPKI: 9.0, APKI: 1.2,
			HotLines: 900, WarmLines: 0, PHot: 0.85, PWarm: 0,
			PBurst: 0.10, BurstLen: 3, BurstGap: 26, PDep: 0.30})

	add("gamess",
		segments([2]int{0, 760}),
		Behavior{Name: "gamess/scf", IlpIPC: 4.8, BranchMPKI: 1.2, APKI: 0.3,
			HotLines: 300, WarmLines: 0, PHot: 0.96, PWarm: 0,
			PBurst: 0.15, BurstLen: 4, BurstGap: 18, PDep: 0.10})

	add("perlbench",
		segments([2]int{0, 340}, [2]int{1, 180}, [2]int{0, 200}),
		Behavior{Name: "perl/interp", IlpIPC: 3.2, BranchMPKI: 5.0, APKI: 2.0,
			HotLines: 1100, WarmLines: 2500, PHot: 0.70, PWarm: 0.22,
			PBurst: 0.12, BurstLen: 3, BurstGap: 24, PDep: 0.40},
		Behavior{Name: "perl/regex", IlpIPC: 2.9, BranchMPKI: 6.5, APKI: 2.8,
			HotLines: 1300, WarmLines: 3200, PHot: 0.66, PWarm: 0.24,
			PBurst: 0.14, BurstLen: 3, BurstGap: 22, PDep: 0.45})

	return suite
}

// ByName returns the suite benchmark with the given name, or nil.
func ByName(name string) *Benchmark {
	return suiteByName()[name]
}
