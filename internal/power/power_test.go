package power

import (
	"testing"
	"testing/quick"

	"qosrma/internal/arch"
)

func testActivity() Activity {
	sys := arch.DefaultSystemConfig(4)
	return Activity{
		Instr:       100e6,
		Seconds:     0.05,
		LLCAccesses: 1e6,
		DRAMAcc:     4e5,
		Core:        sys.Cores[arch.SizeMedium],
		Op:          sys.DVFS[sys.BaselineFreqIdx],
	}
}

func TestEnergyComponentsPositive(t *testing.T) {
	p := DefaultParams(arch.DefaultSystemConfig(4))
	b := Energy(p, testActivity())
	if b.CoreDyn <= 0 || b.CoreStat <= 0 || b.LLC <= 0 || b.DRAM <= 0 || b.Uncore <= 0 {
		t.Fatalf("non-positive component: %+v", b)
	}
	sum := b.CoreDyn + b.CoreStat + b.LLC + b.DRAM + b.Uncore
	if b.Total() != sum {
		t.Fatal("total mismatch")
	}
}

func TestDynamicEnergyQuadraticInVoltage(t *testing.T) {
	p := DefaultParams(arch.DefaultSystemConfig(4))
	a := testActivity()
	a.Op.VoltV = 1.0
	e1 := Energy(p, a).CoreDyn
	a.Op.VoltV = 2.0
	e2 := Energy(p, a).CoreDyn
	if ratio := e2 / e1; ratio < 3.999 || ratio > 4.001 {
		t.Fatalf("dynamic energy ratio %v, want 4 for 2x voltage", ratio)
	}
}

func TestStaticEnergyScalesWithTime(t *testing.T) {
	p := DefaultParams(arch.DefaultSystemConfig(4))
	a := testActivity()
	e1 := Energy(p, a).CoreStat
	a.Seconds *= 3
	e2 := Energy(p, a).CoreStat
	if ratio := e2 / e1; ratio < 2.999 || ratio > 3.001 {
		t.Fatalf("static energy ratio %v, want 3", ratio)
	}
}

func TestCoreSizeAffectsBothComponents(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := DefaultParams(sys)
	a := testActivity()
	a.Core = sys.Cores[arch.SizeSmall]
	small := Energy(p, a)
	a.Core = sys.Cores[arch.SizeLarge]
	large := Energy(p, a)
	if large.CoreDyn <= small.CoreDyn || large.CoreStat <= small.CoreStat {
		t.Fatal("larger core must cost more energy at equal work and time")
	}
}

func TestDRAMEnergyProportionalToMisses(t *testing.T) {
	p := DefaultParams(arch.DefaultSystemConfig(4))
	a := testActivity()
	e1 := Energy(p, a).DRAM
	a.DRAMAcc *= 2
	e2 := Energy(p, a).DRAM
	if e2 != 2*e1 {
		t.Fatalf("DRAM energy not linear: %v vs %v", e1, e2)
	}
}

func TestEPIAndWatts(t *testing.T) {
	p := DefaultParams(arch.DefaultSystemConfig(4))
	a := testActivity()
	e := Energy(p, a).Total()
	if got := EPI(p, a); got != e/a.Instr {
		t.Fatalf("EPI = %v", got)
	}
	if got := Watts(p, a); got != e/a.Seconds {
		t.Fatalf("Watts = %v", got)
	}
	a.Instr = 0
	if EPI(p, a) != 0 {
		t.Fatal("EPI with zero instructions should be 0")
	}
	a.Seconds = 0
	if Watts(p, a) != 0 {
		t.Fatal("Watts with zero time should be 0")
	}
}

func TestBaselinePowerPlausible(t *testing.T) {
	// The modeled per-core power at the baseline operating point should be
	// in the low single-digit watts — the regime of the paper's system.
	p := DefaultParams(arch.DefaultSystemConfig(4))
	a := testActivity()
	w := Watts(p, a)
	if w < 1 || w > 10 {
		t.Fatalf("baseline per-core power %v W, want 1..10 W", w)
	}
}

func TestQuickEnergyNonNegativeAndMonotoneInVolt(t *testing.T) {
	p := DefaultParams(arch.DefaultSystemConfig(4))
	f := func(v1, v2 uint8) bool {
		a := testActivity()
		lo := 0.5 + float64(v1%100)/100
		hi := 0.5 + float64(v2%100)/100
		if lo > hi {
			lo, hi = hi, lo
		}
		a.Op.VoltV = lo
		e1 := Energy(p, a).Total()
		a.Op.VoltV = hi
		e2 := Energy(p, a).Total()
		return e1 >= 0 && e2 >= e1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
