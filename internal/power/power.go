// Package power implements the McPAT-analogue power and energy model. It
// reproduces the structure that matters to the paper's trade-offs:
//
//   - core dynamic energy per instruction scales with switching capacitance
//     (a function of the active core size) and quadratically with voltage;
//   - core leakage power scales with active core size and voltage, and its
//     per-instruction share grows as the core slows down;
//   - LLC accesses and DRAM accesses cost fixed energy each, so partitioning
//     that removes misses saves DRAM energy directly;
//   - a fixed uncore/background power per core is charged by wall time,
//     penalizing any slowdown.
package power

import "qosrma/internal/arch"

// Params are the technology coefficients of the model.
type Params struct {
	// DynEPI1V is the dynamic energy per instruction of the medium core at
	// 1.0 V, in joules.
	DynEPI1V float64
	// LeakWPerV is the medium core's leakage power per volt, in watts.
	LeakWPerV float64
	// LLCAccessJ is the energy per LLC access.
	LLCAccessJ float64
	// DRAMAccessJ is the energy per DRAM access (one LLC miss).
	DRAMAccessJ float64
	// UncoreW is background power charged per core by wall time (memory
	// background, NoC, IO shares).
	UncoreW float64
}

// DefaultParams returns the calibration used throughout the evaluation.
func DefaultParams(sys arch.SystemConfig) Params {
	return Params{
		DynEPI1V:    0.70e-9,
		LeakWPerV:   0.55,
		LLCAccessJ:  0.8e-9,
		DRAMAccessJ: sys.Mem.EnergyPerAcc,
		UncoreW:     sys.UncoreWPerCore + sys.Mem.BackgroundW/float64(sys.NumCores),
	}
}

// Activity describes what one core did during a window.
type Activity struct {
	Instr       float64 // instructions executed
	Seconds     float64 // wall time of the window
	LLCAccesses float64
	DRAMAcc     float64 // LLC misses (DRAM accesses)
	Core        arch.CoreParams
	Op          arch.OperatingPoint
}

// Breakdown is the energy decomposition of a window, in joules.
type Breakdown struct {
	CoreDyn  float64
	CoreStat float64
	LLC      float64
	DRAM     float64
	Uncore   float64
}

// Total returns total energy in joules.
func (b Breakdown) Total() float64 {
	return b.CoreDyn + b.CoreStat + b.LLC + b.DRAM + b.Uncore
}

// Energy evaluates the model for one window.
func Energy(p Params, a Activity) Breakdown {
	v := a.Op.VoltV
	return Breakdown{
		CoreDyn:  p.DynEPI1V * a.Core.CapFactor * v * v * a.Instr,
		CoreStat: p.LeakWPerV * a.Core.LeakFactor * v * a.Seconds,
		LLC:      p.LLCAccessJ * a.LLCAccesses,
		DRAM:     p.DRAMAccessJ * a.DRAMAcc,
		Uncore:   p.UncoreW * a.Seconds,
	}
}

// EPI returns the average energy per instruction for the window, in joules.
func EPI(p Params, a Activity) float64 {
	if a.Instr <= 0 {
		return 0
	}
	return Energy(p, a).Total() / a.Instr
}

// Watts returns the average power over the window.
func Watts(p Params, a Activity) float64 {
	if a.Seconds <= 0 {
		return 0
	}
	return Energy(p, a).Total() / a.Seconds
}
