// Package timing implements the mechanistic interval-analysis core timing
// model that replaces the Sniper detailed simulator in the paper's
// methodology. Interval analysis (Eyerman, Eeckhout et al.; the model family
// Sniper itself is built on) decomposes execution cycles into a base
// component bounded by dispatch width and program ILP, a branch-misprediction
// component, and a memory component in which only *leading* (non-overlapped)
// LLC misses contribute full memory latency.
package timing

import "qosrma/internal/arch"

// Inputs describes one instruction window executed on one core setting.
type Inputs struct {
	Instr         float64 // instructions in the window
	IlpIPC        float64 // dependency-limited IPC of the program phase
	BranchMPKI    float64 // branch mispredictions per kilo-instruction
	LeadingMisses float64 // non-overlapped LLC misses in the window
	FreqGHz       float64 // core frequency
	MemLatNs      float64 // average leading-miss latency in nanoseconds
	Core          arch.CoreParams
}

// Breakdown is the cycle decomposition of a window.
type Breakdown struct {
	BaseCycles   float64 // dispatch/ILP-bound execution
	BranchCycles float64 // branch misprediction penalties
	MemCycles    float64 // leading-miss memory stalls
}

// Total returns the total cycle count.
func (b Breakdown) Total() float64 { return b.BaseCycles + b.BranchCycles + b.MemCycles }

// Cycles evaluates the interval model.
func Cycles(in Inputs) Breakdown {
	effIPC := in.IlpIPC
	if w := float64(in.Core.Width); effIPC > w {
		effIPC = w
	}
	if effIPC <= 0 {
		effIPC = 0.1
	}
	var b Breakdown
	b.BaseCycles = in.Instr / effIPC
	b.BranchCycles = in.BranchMPKI * in.Instr / 1000 * float64(in.Core.BranchPenal)
	// Memory latency in core cycles scales with frequency: the DRAM access
	// time in nanoseconds is fixed, so a faster core wastes more cycles per
	// leading miss — the key reason DVFS does not help memory-bound code.
	b.MemCycles = in.LeadingMisses * in.MemLatNs * in.FreqGHz
	return b
}

// Seconds converts a cycle count at the given frequency to wall time.
func Seconds(cycles, freqGHz float64) float64 {
	return cycles / (freqGHz * 1e9)
}

// BandwidthLatency returns the effective memory latency after queueing at a
// bandwidth-partitioned memory controller: as the demand approaches the
// core's share, waiting time inflates the unloaded latency. A simple
// open-queue approximation (latency x (1 + k.u/(1-u)), utilization capped)
// captures the shape that matters to the resource manager: bandwidth-bound
// phases stop benefiting from frequency increases.
func BandwidthLatency(baseNs, demandBps, capBps float64) float64 {
	if capBps <= 0 || demandBps <= 0 {
		return baseNs
	}
	const (
		k    = 0.5
		uMax = 0.95
	)
	u := demandBps / capBps
	if u > uMax {
		u = uMax
	}
	return baseNs * (1 + k*u/(1-u))
}

// IPS returns instructions per second for the window.
func IPS(in Inputs) float64 {
	c := Cycles(in).Total()
	if c <= 0 {
		return 0
	}
	return in.Instr / Seconds(c, in.FreqGHz)
}

// TPI returns average time per instruction in seconds (the metric the
// co-phase RMA simulator schedules with).
func TPI(in Inputs) float64 {
	ips := IPS(in)
	if ips <= 0 {
		return 0
	}
	return 1 / ips
}
