package timing

import (
	"testing"
	"testing/quick"

	"qosrma/internal/arch"
)

func mediumCore() arch.CoreParams { return arch.DefaultCoreParams()[arch.SizeMedium] }

func baseInputs() Inputs {
	return Inputs{
		Instr:         100e6,
		IlpIPC:        2.5,
		BranchMPKI:    4,
		LeadingMisses: 300_000,
		FreqGHz:       2.0,
		MemLatNs:      75,
		Core:          mediumCore(),
	}
}

func TestCyclesComponentsPositive(t *testing.T) {
	b := Cycles(baseInputs())
	if b.BaseCycles <= 0 || b.BranchCycles <= 0 || b.MemCycles <= 0 {
		t.Fatalf("non-positive component: %+v", b)
	}
	if b.Total() != b.BaseCycles+b.BranchCycles+b.MemCycles {
		t.Fatal("total mismatch")
	}
}

func TestWidthBoundsIPC(t *testing.T) {
	in := baseInputs()
	in.IlpIPC = 10
	in.LeadingMisses = 0
	in.BranchMPKI = 0
	b := Cycles(in)
	wantMin := in.Instr / float64(in.Core.Width)
	if b.BaseCycles < wantMin-1 {
		t.Fatalf("base cycles %v below width bound %v", b.BaseCycles, wantMin)
	}
}

func TestMemoryStallsScaleWithFrequency(t *testing.T) {
	in := baseInputs()
	slow := Cycles(in)
	in.FreqGHz = 3.0
	fast := Cycles(in)
	if fast.MemCycles <= slow.MemCycles {
		t.Fatal("memory cycles must grow with frequency (fixed ns latency)")
	}
	if fast.BaseCycles != slow.BaseCycles {
		t.Fatal("base cycles must be frequency-independent")
	}
}

func TestIPSSaturatesForMemoryBound(t *testing.T) {
	// For a heavily memory-bound window, doubling frequency must yield far
	// less than double the performance.
	in := baseInputs()
	in.LeadingMisses = 3e6 // very memory bound
	ipsLow := IPS(in)
	in.FreqGHz = 3.2
	ipsHigh := IPS(in)
	gain := ipsHigh / ipsLow
	if gain > 1.25 {
		t.Fatalf("memory-bound speedup %v, want < 1.25 for 1.6x frequency", gain)
	}
}

func TestIPSNearLinearForComputeBound(t *testing.T) {
	in := baseInputs()
	in.LeadingMisses = 0
	ipsLow := IPS(in)
	in.FreqGHz = 4.0
	ipsHigh := IPS(in)
	if gain := ipsHigh / ipsLow; gain < 1.99 || gain > 2.01 {
		t.Fatalf("compute-bound speedup %v, want ~2.0", gain)
	}
}

func TestLargerCoreFasterWhenILPAvailable(t *testing.T) {
	cores := arch.DefaultCoreParams()
	in := baseInputs()
	in.IlpIPC = 5.5
	in.Core = cores[arch.SizeSmall]
	small := IPS(in)
	in.Core = cores[arch.SizeLarge]
	large := IPS(in)
	if large <= small {
		t.Fatalf("large core not faster: %v vs %v", large, small)
	}
}

func TestTPIInvertsIPS(t *testing.T) {
	in := baseInputs()
	if got := TPI(in) * IPS(in); got < 0.999 || got > 1.001 {
		t.Fatalf("TPI*IPS = %v", got)
	}
}

func TestSeconds(t *testing.T) {
	if s := Seconds(2e9, 2.0); s != 1.0 {
		t.Fatalf("Seconds = %v, want 1", s)
	}
}

func TestDegenerateInputsSafe(t *testing.T) {
	in := baseInputs()
	in.IlpIPC = 0
	if c := Cycles(in).Total(); c <= 0 {
		t.Fatal("zero IlpIPC must still produce positive cycles")
	}
	in = baseInputs()
	in.Instr = 0
	if ips := IPS(in); ips != 0 {
		// zero instructions but fixed stalls: IPS 0 is correct
		t.Fatalf("IPS with zero instructions = %v", ips)
	}
}

func TestQuickCyclesMonotoneInMisses(t *testing.T) {
	f := func(m1, m2 uint32) bool {
		a, b := float64(m1%10_000_000), float64(m2%10_000_000)
		if a > b {
			a, b = b, a
		}
		in := baseInputs()
		in.LeadingMisses = a
		ca := Cycles(in).Total()
		in.LeadingMisses = b
		cb := Cycles(in).Total()
		return cb >= ca
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickIPSMonotoneInFrequency(t *testing.T) {
	f := func(f1, f2 uint8) bool {
		a := 0.8 + float64(f1%25)*0.1
		b := 0.8 + float64(f2%25)*0.1
		if a > b {
			a, b = b, a
		}
		in := baseInputs()
		in.FreqGHz = a
		ia := IPS(in)
		in.FreqGHz = b
		ib := IPS(in)
		return ib >= ia-1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
