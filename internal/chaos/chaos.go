// Package chaos is the repository's fault-injection harness: a TCP proxy
// that sits between a client and a backend and injects the failures a
// production fleet actually sees — added latency and jitter, connection
// resets, partial writes followed by a reset, and blackholes (accepted
// connections that never answer) — plus an operator switch (SetCut) that
// simulates killing and restarting the backend. Every fault decision is
// drawn from a deterministic seeded RNG stream (internal/stats), keyed by
// the proxy seed and the connection's accept sequence number, so a chaos
// run replays the same fault schedule for the same connection order.
//
// The proxy is protocol-agnostic — it forwards bytes — so one harness
// exercises both the HTTP/JSON path and the binary wire protocol. The
// chaos test wall (chaos_test.go, run by `make chaos`) stands up a fleet
// of real decision servers behind these proxies, drives the routing tier
// through injected faults, and asserts the resilience invariants: every
// successful decide answer is bit-identical to the library, error rates
// stay bounded, and ejected backends are readmitted after they heal.
package chaos

import (
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"qosrma/internal/stats"
)

// Faults describes the injected failure mix. Probabilities are evaluated
// per forwarded chunk (one Read from either side) except BlackholeProb,
// which is drawn once per connection. The zero value forwards cleanly.
type Faults struct {
	// Seed keys the deterministic fault streams (one per connection,
	// derived from Seed and the accept sequence number).
	Seed uint64
	// LatencyMin/LatencyMax bound the uniform extra delay injected before
	// each forwarded chunk (jitter = the Max-Min spread).
	LatencyMin time.Duration
	LatencyMax time.Duration
	// ResetProb is the per-chunk probability of hard-closing both sides
	// mid-stream (a connection reset).
	ResetProb float64
	// PartialWriteProb is the per-chunk probability of forwarding only a
	// prefix of the chunk and then resetting — the truncated-response
	// case (a reset mid-body, after the status line already went out).
	PartialWriteProb float64
	// BlackholeProb is the per-connection probability of accepting and
	// reading but never forwarding anything — the client sees a hung
	// connection until its own deadline fires.
	BlackholeProb float64
}

// Proxy is one fault-injecting TCP forwarder. Construct with NewProxy;
// point clients at Addr.
type Proxy struct {
	ln     net.Listener
	target string

	mu     sync.Mutex
	faults Faults
	cut    bool
	conns  map[net.Conn]struct{}

	seq        atomic.Uint64 // accept sequence, keys per-connection RNGs
	accepted   atomic.Uint64
	refused    atomic.Uint64 // connections dropped while cut
	resets     atomic.Uint64 // injected resets (incl. after partial writes)
	partials   atomic.Uint64 // injected partial writes
	blackholes atomic.Uint64 // connections blackholed

	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewProxy listens on 127.0.0.1 (ephemeral port) and forwards every
// accepted connection to target, injecting f's faults.
func NewProxy(target string, f Faults) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: listen: %w", err)
	}
	p := &Proxy{ln: ln, target: target, faults: f, conns: make(map[net.Conn]struct{})}
	p.wg.Add(1)
	go p.serve()
	return p, nil
}

// Addr is the proxy's listen address (host:port) — what clients dial.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Target is the backend address the proxy forwards to.
func (p *Proxy) Target() string { return p.target }

// SetFaults replaces the fault mix for connections accepted from now on.
func (p *Proxy) SetFaults(f Faults) {
	p.mu.Lock()
	p.faults = f
	p.mu.Unlock()
}

// SetCut simulates killing (true) and restarting (false) the backend:
// while cut, new connections are accepted and immediately reset and every
// established connection is torn down. The listener itself stays open, so
// healing is instant — exactly like a crashed process returning on the
// same port.
func (p *Proxy) SetCut(cut bool) {
	p.mu.Lock()
	p.cut = cut
	var toClose []net.Conn
	if cut {
		for c := range p.conns {
			toClose = append(toClose, c)
		}
	}
	p.mu.Unlock()
	for _, c := range toClose {
		hardClose(c)
	}
}

// Stats reports lifetime counters: connections accepted and refused, and
// injected resets, partial writes and blackholes.
func (p *Proxy) Stats() (accepted, refused, resets, partials, blackholes uint64) {
	return p.accepted.Load(), p.refused.Load(), p.resets.Load(),
		p.partials.Load(), p.blackholes.Load()
}

// Close stops accepting and tears down every connection.
func (p *Proxy) Close() {
	p.closeOnce.Do(func() { p.ln.Close() })
	p.mu.Lock()
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// track registers a connection for teardown; false means the proxy is
// cut or closed and the connection must be dropped.
func (p *Proxy) track(c net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.cut {
		return false
	}
	p.conns[c] = struct{}{}
	return true
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// serve is the accept loop.
func (p *Proxy) serve() {
	defer p.wg.Done()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(client) {
			p.refused.Add(1)
			hardClose(client)
			continue
		}
		p.accepted.Add(1)
		n := p.seq.Add(1)
		p.mu.Lock()
		f := p.faults
		p.mu.Unlock()
		p.wg.Add(1)
		go p.forward(client, n, f)
	}
}

// forward runs one proxied connection: dial the backend, then pump both
// directions through the fault injector until either side closes or a
// fault kills the stream.
func (p *Proxy) forward(client net.Conn, seq uint64, f Faults) {
	defer p.wg.Done()
	defer p.untrack(client)
	defer client.Close()

	// One independent deterministic stream per direction, both derived
	// from the proxy seed and the accept sequence number.
	connSeed := stats.SeedFrom(f.Seed, fmt.Sprintf("chaos/conn/%d", seq))
	if f.BlackholeProb > 0 &&
		stats.NewRNG(stats.SeedFrom(connSeed, "blackhole")).Float64() < f.BlackholeProb {
		// Read and discard forever; never dial the backend. The client
		// observes a connection that accepts requests and answers nothing.
		p.blackholes.Add(1)
		io.Copy(io.Discard, client) //nolint:errcheck // drained until the client gives up
		return
	}

	backend, err := net.DialTimeout("tcp", p.target, 2*time.Second)
	if err != nil {
		hardClose(client)
		return
	}
	if !p.track(backend) {
		hardClose(backend)
		hardClose(client)
		return
	}
	defer p.untrack(backend)
	defer backend.Close()

	kill := func() {
		p.resets.Add(1)
		hardClose(client)
		hardClose(backend)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		p.pump(client, backend, stats.NewRNG(stats.SeedFrom(connSeed, "c2b")), f, kill)
	}()
	go func() {
		defer wg.Done()
		p.pump(backend, client, stats.NewRNG(stats.SeedFrom(connSeed, "b2c")), f, kill)
	}()
	wg.Wait()
}

// pump copies src → dst chunk by chunk, injecting latency, partial
// writes and resets per the fault mix. kill hard-closes both sides.
func (p *Proxy) pump(src, dst net.Conn, rng *stats.RNG, f Faults, kill func()) {
	buf := make([]byte, 16<<10)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if d := f.delay(rng); d > 0 {
				time.Sleep(d)
			}
			switch {
			case f.ResetProb > 0 && rng.Float64() < f.ResetProb:
				kill()
				return
			case f.PartialWriteProb > 0 && rng.Float64() < f.PartialWriteProb && n > 1:
				p.partials.Add(1)
				dst.Write(buf[:n/2]) //nolint:errcheck // about to reset anyway
				kill()
				return
			default:
				if _, werr := dst.Write(buf[:n]); werr != nil {
					return
				}
			}
		}
		if err != nil {
			// Half-close so the other pump can finish its direction; a
			// full Close would race responses still in flight.
			if tc, ok := dst.(*net.TCPConn); ok && err == io.EOF {
				tc.CloseWrite() //nolint:errcheck // best effort
			} else {
				dst.Close()
			}
			return
		}
	}
}

// delay draws the injected per-chunk latency.
func (f Faults) delay(rng *stats.RNG) time.Duration {
	if f.LatencyMax <= 0 {
		return 0
	}
	if f.LatencyMax <= f.LatencyMin {
		return f.LatencyMin
	}
	return f.LatencyMin + time.Duration(rng.Float64()*float64(f.LatencyMax-f.LatencyMin))
}

// hardClose resets the connection (RST, not FIN) so the peer observes
// the abrupt failure a crashed process produces.
func hardClose(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetLinger(0) //nolint:errcheck // best effort
	}
	c.Close()
}
