package chaos

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// echoServer accepts connections and echoes bytes back until closed.
func echoServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				io.Copy(c, c) //nolint:errcheck // test echo
			}()
		}
	}()
	t.Cleanup(func() { ln.Close() })
	return ln
}

// TestProxyCleanForward: with zero faults the proxy is a transparent
// byte pipe.
func TestProxyCleanForward(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	msg := []byte("through the chaos proxy, unharmed")
	if _, err := c.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test deadline
	if _, err := io.ReadFull(c, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatalf("echoed %q, want %q", got, msg)
	}
	accepted, _, resets, _, _ := p.Stats()
	if accepted != 1 || resets != 0 {
		t.Fatalf("accepted=%d resets=%d, want 1/0", accepted, resets)
	}
}

// TestProxyResetInjection: with ResetProb=1 every chunk dies with a
// reset — the client observes a closed connection, never its echo.
func TestProxyResetInjection(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), Faults{Seed: 7, ResetProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("doomed"))                          //nolint:errcheck // the write may outrun the reset
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test deadline
	if _, err := c.Read(make([]byte, 8)); err == nil {
		t.Fatal("read succeeded through a ResetProb=1 proxy")
	}
	_, _, resets, _, _ := p.Stats()
	if resets == 0 {
		t.Fatal("no reset recorded")
	}
}

// TestProxyCutAndHeal: SetCut(true) kills established connections and
// resets new ones; SetCut(false) restores clean forwarding on the same
// address — the kill/restart primitive the chaos wall scripts.
func TestProxyCutAndHeal(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), Faults{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("hi")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 2)
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test deadline
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatal(err)
	}

	p.SetCut(true)
	// The established connection dies...
	c.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test deadline
	if _, err := c.Read(buf); err == nil {
		t.Fatal("established connection survived the cut")
	}
	// ...and new connections are reset before any byte flows.
	dead, err := net.Dial("tcp", p.Addr())
	if err == nil {
		dead.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test deadline
		if _, err := dead.Read(buf); err == nil {
			t.Fatal("connection through a cut proxy answered")
		}
		dead.Close()
	}

	p.SetCut(false)
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if _, err := c2.Write([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	c2.SetReadDeadline(time.Now().Add(2 * time.Second)) //nolint:errcheck // test deadline
	if _, err := io.ReadFull(c2, buf); err != nil {
		t.Fatalf("healed proxy did not forward: %v", err)
	}
	if string(buf) != "ok" {
		t.Fatalf("healed echo %q", buf)
	}
	_, refused, _, _, _ := p.Stats()
	if refused == 0 {
		t.Fatal("no refused connection recorded during the cut")
	}
}

// TestProxyBlackhole: a blackholed connection accepts writes and never
// answers — the client's own deadline is its only way out.
func TestProxyBlackhole(t *testing.T) {
	ln := echoServer(t)
	p, err := NewProxy(ln.Addr().String(), Faults{Seed: 3, BlackholeProb: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Write([]byte("anyone home?")); err != nil {
		t.Fatal(err)
	}
	c.SetReadDeadline(time.Now().Add(150 * time.Millisecond)) //nolint:errcheck // test deadline
	if _, err := c.Read(make([]byte, 8)); err == nil {
		t.Fatal("blackholed connection answered")
	}
	_, _, _, _, blackholes := p.Stats()
	if blackholes != 1 {
		t.Fatalf("blackholes=%d, want 1", blackholes)
	}
}

// TestProxyDeterministicFaultSchedule: the same seed and connection
// order replays the same fault decisions (here: which of 20 sequential
// connections get blackholed).
func TestProxyDeterministicFaultSchedule(t *testing.T) {
	run := func() []bool {
		ln := echoServer(t)
		p, err := NewProxy(ln.Addr().String(), Faults{Seed: 42, BlackholeProb: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		outcomes := make([]bool, 20)
		for i := range outcomes {
			c, err := net.Dial("tcp", p.Addr())
			if err != nil {
				t.Fatal(err)
			}
			c.Write([]byte("ping"))                                   //nolint:errcheck // best effort
			c.SetReadDeadline(time.Now().Add(300 * time.Millisecond)) //nolint:errcheck // test deadline
			_, rerr := io.ReadFull(c, make([]byte, 4))
			outcomes[i] = rerr == nil // true = echoed, false = blackholed
			c.Close()
		}
		return outcomes
	}
	a, b := run(), run()
	echoed := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("connection %d: run A echoed=%v, run B echoed=%v — fault schedule not deterministic", i, a[i], b[i])
		}
		if a[i] {
			echoed++
		}
	}
	if echoed == 0 || echoed == len(a) {
		t.Fatalf("degenerate schedule: %d/%d echoed (want a mix at p=0.5)", echoed, len(a))
	}
}
