package core

import (
	"math"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/power"
)

// fakeStats builds self-consistent interval statistics for a synthetic
// phase running at the baseline setting: the Cycles field matches what the
// interval timing model would produce given the hidden ilpIPC.
func fakeStats(sys arch.SystemConfig, ilpIPC, apki float64, missProfile []float64, mlp float64) *IntervalStats {
	const instr = 100e6
	base := sys.BaselineSetting()
	cur := sys.Cores[base.Size]
	f := sys.DVFS[base.FreqIdx].FreqGHz

	branchMisses := 4.0 * instr / 1000
	misses := missProfile[base.Ways]
	leading := misses / mlp
	eff := math.Min(ilpIPC, float64(cur.Width))
	cycles := instr/eff + branchMisses*float64(cur.BranchPenal) +
		leading*sys.Mem.LatencyNs*f

	// Leading profiles per size: bigger cores overlap more.
	leadProfile := make([][]float64, arch.NumCoreSizes)
	mlpBySize := []float64{math.Max(1, mlp*0.7), mlp, mlp * 1.3}
	for c := range leadProfile {
		leadProfile[c] = make([]float64, len(missProfile))
		for w := range missProfile {
			leadProfile[c][w] = missProfile[w] / mlpBySize[c]
		}
	}
	return &IntervalStats{
		Core:          0,
		Setting:       base,
		Instr:         instr,
		Cycles:        cycles,
		LLCAccesses:   apki * instr / 1000,
		BranchMisses:  branchMisses,
		TotalMisses:   misses,
		LeadingMisses: leading,
		ATDMisses:     append([]float64(nil), missProfile...),
		ATDLeading:    leadProfile,
	}
}

// missProfile builds a decreasing miss curve with a knee.
func missProfile(assoc int, total, floor float64, knee int) []float64 {
	p := make([]float64, assoc+1)
	for w := 0; w <= assoc; w++ {
		if w >= knee {
			p[w] = floor
			continue
		}
		frac := float64(w) / float64(knee)
		p[w] = total - (total-floor)*frac
	}
	return p
}

func testPredictor(sys arch.SystemConfig, kind ModelKind) *Predictor {
	return &Predictor{Sys: &sys, Power: power.DefaultParams(sys), Kind: kind}
}

func TestEffIPCRecoversUnsaturatedILP(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 10, missProfile(16, 1.2e6, 2e5, 10), 2)
	got := p.effIPC(st, sys.Cores[arch.SizeMedium])
	if math.Abs(got-2.5) > 0.01 {
		t.Fatalf("effIPC = %v, want ~2.5", got)
	}
}

func TestEffIPCSaturatedAssumesWiderHelps(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 6.0, 2, missProfile(16, 3e5, 1e5, 8), 2) // width-bound on medium (width 4)
	got := p.effIPC(st, sys.Cores[arch.SizeLarge])
	if got <= 4 || got > 6 {
		t.Fatalf("effIPC on large = %v, want in (4, 6] (modest assumed headroom)", got)
	}
	if got := p.effIPC(st, sys.Cores[arch.SizeSmall]); got != 2 {
		t.Fatalf("effIPC on small = %v, want 2 (width bound)", got)
	}
}

func TestOracleStatsUseTrueILP(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model3)
	st := fakeStats(sys, 3.0, 10, missProfile(16, 1e6, 2e5, 10), 2)
	st.IlpIPC = 3.0
	if got := p.effIPC(st, sys.Cores[arch.SizeLarge]); got != 3.0 {
		t.Fatalf("oracle effIPC = %v, want 3.0", got)
	}
}

func TestModelOrderingOnStalls(t *testing.T) {
	// Model1 (no overlap) must predict the most cycles; Model3 with a
	// large core (more MLP) the fewest.
	sys := arch.DefaultSystemConfig(4)
	st := fakeStats(sys, 2.5, 15, missProfile(16, 2e6, 4e5, 10), 2.5)
	s := sys.BaselineSetting()
	c1 := testPredictor(sys, Model1).Cycles(st, s)
	c2 := testPredictor(sys, Model2).Cycles(st, s)
	c3 := testPredictor(sys, Model3).Cycles(st, s)
	if !(c1 > c2) {
		t.Fatalf("Model1 cycles %v not above Model2 %v", c1, c2)
	}
	// At the measurement setting Model2 and Model3 agree by construction.
	if math.Abs(c2-c3)/c2 > 0.01 {
		t.Fatalf("Model2 %v vs Model3 %v at measurement point", c2, c3)
	}
}

func TestModel3SeesMLPGainOnLargeCore(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	st := fakeStats(sys, 2.0, 15, missProfile(16, 2e6, 4e5, 10), 2.0)
	s := sys.BaselineSetting()
	s.Size = arch.SizeLarge
	c2 := testPredictor(sys, Model2).Cycles(st, s)
	c3 := testPredictor(sys, Model3).Cycles(st, s)
	if !(c3 < c2) {
		t.Fatalf("Model3 (%v) should predict fewer cycles than Model2 (%v) on large core", c3, c2)
	}
}

func TestModel3FallsBackWithoutHardware(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	st := fakeStats(sys, 2.0, 15, missProfile(16, 2e6, 4e5, 10), 2.0)
	st.ATDLeading = nil
	s := sys.BaselineSetting()
	c2 := testPredictor(sys, Model2).Cycles(st, s)
	c3 := testPredictor(sys, Model3).Cycles(st, s)
	if c2 != c3 {
		t.Fatalf("Model3 without MLP-ATD should equal Model2: %v vs %v", c3, c2)
	}
}

func TestPredictedIPSMonotoneInWays(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 15, missProfile(16, 2e6, 2e5, 12), 2)
	s := sys.BaselineSetting()
	prev := 0.0
	for w := 1; w <= 13; w++ {
		s.Ways = w
		ips := p.IPS(st, s)
		if ips < prev-1e-6 {
			t.Fatalf("IPS decreased at w=%d", w)
		}
		prev = ips
	}
}

func TestQoSTargetSlack(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 10, missProfile(16, 1e6, 2e5, 10), 2)
	base := p.QoSTargetIPS(st, 0)
	relaxed := p.QoSTargetIPS(st, 0.25)
	if math.Abs(base/relaxed-1.25) > 1e-9 {
		t.Fatalf("slack not applied: %v vs %v", base, relaxed)
	}
}

func TestQoSTargetEqualsBaselinePrediction(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 10, missProfile(16, 1e6, 2e5, 10), 2)
	if p.QoSTargetIPS(st, 0) != p.IPS(st, sys.BaselineSetting()) {
		t.Fatal("QoS target must equal predicted baseline IPS")
	}
}

func TestEPIComponentsRespondToSetting(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 15, missProfile(16, 2e6, 2e5, 12), 2)
	s := sys.BaselineSetting()
	epiBase := p.EPI(st, s)
	// Lower frequency cuts dynamic energy per instruction.
	s.FreqIdx = 2
	epiLow := p.EPI(st, s)
	if epiLow >= epiBase {
		t.Fatalf("lower frequency did not reduce EPI: %v vs %v", epiLow, epiBase)
	}
	// More ways cut DRAM energy for this miss profile.
	s = sys.BaselineSetting()
	s.Ways = 12
	epiWays := p.EPI(st, s)
	if epiWays >= epiBase {
		t.Fatalf("more ways did not reduce EPI: %v vs %v", epiWays, epiBase)
	}
}

func TestStatsCloneIsDeep(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	st := fakeStats(sys, 2.5, 10, missProfile(16, 1e6, 2e5, 10), 2)
	c := st.Clone()
	c.ATDMisses[3] = -1
	c.ATDLeading[0][3] = -1
	if st.ATDMisses[3] == -1 || st.ATDLeading[0][3] == -1 {
		t.Fatal("Clone shares slices")
	}
}

func TestMLPFloorsAtOne(t *testing.T) {
	st := &IntervalStats{TotalMisses: 10, LeadingMisses: 100}
	if st.MLP() != 1 {
		t.Fatalf("MLP = %v, want floor 1", st.MLP())
	}
	st.LeadingMisses = 0
	if st.MLP() != 1 {
		t.Fatal("MLP with zero leading should be 1")
	}
}
