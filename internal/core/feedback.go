package core

import "math"

// FeedbackTable implements the thesis' future-work proposal (Chapter 4):
// replace the Paper II MLP-ATD *hardware* with a software phase table and a
// feedback loop. The dominant realistic-model error of the Paper I scheme
// is the constant-MLP assumption: when an application gains cache ways its
// surviving misses spread out and overlap less, so the measured MLP no
// longer applies to the new allocation and the manager over-commits.
//
// The table learns, per recurring program phase (identified by a quantized
// counter signature), the MLP actually observed at every way allocation the
// manager has visited. Predictions for visited (phase, ways) points then
// use the learned value instead of the constant-MLP extrapolation; only the
// first venture into an unvisited allocation still pays the Model 2 error.
type FeedbackTable struct {
	assoc int
	mlp   map[fbKey][]fbCell
}

// fbKey is the quantized phase signature. Every component must be
// *allocation-invariant* — otherwise changing the partition moves the same
// program phase into a different key and nothing learned ever gets found
// again. LLC access intensity and branch behaviour are properties of the
// program; the ATD miss profile sampled at two fixed reference way counts
// characterizes its locality independent of the current allocation.
type fbKey struct {
	apkiB   int8
	mpkiLoB int8 // misses per kilo-instruction at the low reference ways
	mpkiHiB int8 // ... at the high reference ways
	branchB int8
}

// fbCell is an exponentially weighted estimate of MLP at one way count.
type fbCell struct {
	val float64
	n   int
}

// fbAlpha is the EWMA weight of a new observation.
const fbAlpha = 0.3

// NewFeedbackTable returns an empty table for a cache with the given
// associativity.
func NewFeedbackTable(assoc int) *FeedbackTable {
	return &FeedbackTable{assoc: assoc, mlp: make(map[fbKey][]fbCell)}
}

// logBucket quantizes x into coarse logarithmic buckets (quarter-decades),
// so that slices of the same phase map to the same key despite noise.
func logBucket(x float64) int8 {
	if x <= 0.01 {
		return -8
	}
	return int8(math.Round(4 * math.Log10(x)))
}

// signature derives the allocation-invariant phase key from interval
// statistics.
func (t *FeedbackTable) signature(st *IntervalStats) fbKey {
	const kilo = 1000.0
	loRef, hiRef := 2, t.assoc/2
	apki := st.LLCAccesses / st.Instr * kilo
	mpkiLo := clampIndexed(st.ATDMisses, loRef) / st.Instr * kilo
	mpkiHi := clampIndexed(st.ATDMisses, hiRef) / st.Instr * kilo
	branch := st.BranchMisses / st.Instr * kilo
	return fbKey{
		apkiB:   logBucket(apki),
		mpkiLoB: logBucket(mpkiLo),
		mpkiHiB: logBucket(mpkiHi),
		branchB: logBucket(branch),
	}
}

// Observe records the MLP measured during the completed interval at the
// allocation it ran under.
func (t *FeedbackTable) Observe(st *IntervalStats) {
	if st.Instr <= 0 || st.TotalMisses <= 0 {
		return
	}
	key := t.signature(st)
	cells := t.mlp[key]
	if cells == nil {
		cells = make([]fbCell, t.assoc+1)
		t.mlp[key] = cells
	}
	w := st.Setting.Ways
	if w < 0 || w > t.assoc {
		return
	}
	c := &cells[w]
	obs := st.MLP()
	if c.n == 0 {
		c.val = obs
	} else {
		c.val = (1-fbAlpha)*c.val + fbAlpha*obs
	}
	c.n++
}

// MLPFor returns the learned MLP for the statistics' phase at the given way
// count and whether a learned value exists.
func (t *FeedbackTable) MLPFor(st *IntervalStats, ways int) (float64, bool) {
	cells, ok := t.mlp[t.signature(st)]
	if !ok || ways < 0 || ways > t.assoc {
		return 0, false
	}
	if c := cells[ways]; c.n > 0 {
		return c.val, true
	}
	return 0, false
}

// Phases returns the number of distinct phase signatures learned.
func (t *FeedbackTable) Phases() int { return len(t.mlp) }

// Observations returns the total number of recorded observations.
func (t *FeedbackTable) Observations() int {
	total := 0
	for _, cells := range t.mlp {
		for _, c := range cells {
			total += c.n
		}
	}
	return total
}
