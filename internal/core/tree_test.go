package core

import (
	"math"
	"testing"
	"testing/quick"

	"qosrma/internal/stats"
)

func TestTreeMatchesFold(t *testing.T) {
	// The pairwise reduction tree and the sequential fold must find
	// allocations of identical total energy on arbitrary inputs.
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const assoc = 12
		n := 2 + rng.Intn(5) // 2..6 cores
		curves := make([]*Curve, n)
		for i := range curves {
			curves[i] = randomCurve(rng, assoc, assoc-(n-1))
		}
		foldAlloc, okF := AllocateWays(curves, assoc)
		treeAlloc, okT := AllocateWaysTree(curves, assoc)
		if okF != okT {
			return false
		}
		if !okF {
			return true
		}
		return math.Abs(TotalEPI(curves, foldAlloc)-TotalEPI(curves, treeAlloc)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeAllocationValid(t *testing.T) {
	rng := stats.NewRNG(17)
	const assoc = 32
	curves := make([]*Curve, 8)
	for i := range curves {
		curves[i] = randomCurve(rng, assoc, assoc-7)
	}
	alloc, ok := AllocateWaysTree(curves, assoc)
	if !ok {
		t.Fatal("allocation failed")
	}
	sum := 0
	for _, w := range alloc {
		if w < 1 {
			t.Fatalf("core got %d ways", w)
		}
		sum += w
	}
	if sum != assoc {
		t.Fatalf("allocation sums to %d", sum)
	}
}

func TestTreeOddCoreCount(t *testing.T) {
	rng := stats.NewRNG(23)
	for _, n := range []int{1, 3, 5, 7} {
		const assoc = 16
		curves := make([]*Curve, n)
		for i := range curves {
			curves[i] = randomCurve(rng, assoc, assoc-(n-1))
		}
		alloc, ok := AllocateWaysTree(curves, assoc)
		if !ok {
			t.Fatalf("n=%d: allocation failed", n)
		}
		sum := 0
		for _, w := range alloc {
			sum += w
		}
		if sum != assoc {
			t.Fatalf("n=%d: allocation sums to %d", n, sum)
		}
	}
}

func TestTreeInfeasible(t *testing.T) {
	c := &Curve{Options: make([]Option, 9)}
	for w := range c.Options {
		c.Options[w] = Option{EPI: math.Inf(1)}
	}
	if _, ok := AllocateWaysTree([]*Curve{c, c}, 8); ok {
		t.Fatal("expected infeasibility")
	}
	if _, ok := AllocateWaysTree(nil, 8); ok {
		t.Fatal("empty input should fail")
	}
}

func FuzzAllocateWaysEquivalence(f *testing.F) {
	f.Add(uint64(1))
	f.Add(uint64(42))
	f.Fuzz(func(t *testing.T, seed uint64) {
		rng := stats.NewRNG(seed)
		const assoc = 8
		n := 2 + rng.Intn(3)
		curves := make([]*Curve, n)
		for i := range curves {
			curves[i] = randomCurve(rng, assoc, assoc-(n-1))
		}
		a1, ok1 := AllocateWays(curves, assoc)
		a2, ok2 := AllocateWaysTree(curves, assoc)
		if ok1 != ok2 {
			t.Fatalf("feasibility disagrees: fold %v tree %v", ok1, ok2)
		}
		if ok1 && math.Abs(TotalEPI(curves, a1)-TotalEPI(curves, a2)) > 1e-9 {
			t.Fatalf("energies disagree: %v vs %v", TotalEPI(curves, a1), TotalEPI(curves, a2))
		}
	})
}
