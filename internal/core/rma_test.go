package core

import (
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/power"
)

func managerFor(scheme Scheme, kind ModelKind) (*Manager, arch.SystemConfig) {
	sys := arch.DefaultSystemConfig(4)
	m := NewManager(Config{
		Sys:    sys,
		Power:  power.DefaultParams(sys),
		Scheme: scheme,
		Model:  kind,
	})
	return m, sys
}

// statsForCore builds fake statistics for a given core id with a chosen
// cache sensitivity.
func statsForCore(sys arch.SystemConfig, core int, sensitive bool) *IntervalStats {
	var profile []float64
	if sensitive {
		profile = missProfile(sys.LLC.Assoc, 2.5e6, 2e5, 12)
	} else {
		profile = missProfile(sys.LLC.Assoc, 6e5, 5.5e5, 2)
	}
	st := fakeStats(sys, 2.5, 12, profile, 2)
	st.Core = core
	return st
}

func TestStaticSchemeNeverChanges(t *testing.T) {
	m, sys := managerFor(SchemeStatic, Model2)
	if _, ok := m.Decide(0, statsForCore(sys, 0, true)); ok {
		t.Fatal("static scheme produced a decision")
	}
	for _, s := range m.Settings() {
		if s != sys.BaselineSetting() {
			t.Fatal("static scheme moved a setting")
		}
	}
}

func TestCoordinatedWaitsForAllCores(t *testing.T) {
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	for core := 0; core < 3; core++ {
		if _, ok := m.Decide(core, statsForCore(sys, core, true)); ok {
			t.Fatalf("decision before all cores reported (core %d)", core)
		}
	}
	if _, ok := m.Decide(3, statsForCore(sys, 3, true)); !ok {
		t.Fatal("no decision once all cores reported")
	}
}

func TestCoordinatedAllocationValid(t *testing.T) {
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	var settings []arch.Setting
	for core := 0; core < 4; core++ {
		settings, _ = m.Decide(core, statsForCore(sys, core, core%2 == 0))
	}
	if settings == nil {
		t.Fatal("no settings")
	}
	sum := 0
	for _, s := range settings {
		if s.Ways < 1 {
			t.Fatalf("core has %d ways", s.Ways)
		}
		if s.Size != sys.BaselineSize {
			t.Fatal("RM2 must not change core size")
		}
		sum += s.Ways
	}
	if sum != sys.LLC.Assoc {
		t.Fatalf("ways sum %d != associativity %d", sum, sys.LLC.Assoc)
	}
}

func TestCoordinatedFavorsSensitiveCores(t *testing.T) {
	// Two cache-sensitive cores plus two insensitive ones: the sensitive
	// cores should end up with at least the baseline share.
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	var settings []arch.Setting
	for core := 0; core < 4; core++ {
		settings, _ = m.Decide(core, statsForCore(sys, core, core < 2))
	}
	for core := 0; core < 2; core++ {
		if settings[core].Ways < sys.BaselineWays() {
			t.Fatalf("sensitive core %d got %d ways (< baseline %d)",
				core, settings[core].Ways, sys.BaselineWays())
		}
	}
	if settings[0].Ways+settings[1].Ways <= settings[2].Ways+settings[3].Ways {
		t.Fatal("sensitive cores did not receive more cache")
	}
}

func TestCoordinatedMeetsPredictedQoS(t *testing.T) {
	// Whatever the manager picks must satisfy its own QoS prediction.
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	pred := Predictor{Sys: &sys, Power: power.DefaultParams(sys), Kind: Model2}
	all := make([]*IntervalStats, 4)
	var settings []arch.Setting
	for core := 0; core < 4; core++ {
		all[core] = statsForCore(sys, core, core%2 == 0)
		settings, _ = m.Decide(core, all[core])
	}
	for core, s := range settings {
		target := pred.QoSTargetIPS(all[core], 0)
		if got := pred.IPS(all[core], s); got < target*(1-1e-9) {
			t.Fatalf("core %d: chosen setting predicted IPS %v < target %v",
				core, got, target)
		}
	}
}

func TestRM3CanShrinkCore(t *testing.T) {
	// A phase with plenty of MLP upside and low ILP lets RM3 pick a
	// non-baseline core size somewhere; at minimum it must produce valid
	// settings with sizes within range.
	m, sys := managerFor(SchemeCoordCoreDVFSCache, Model3)
	var settings []arch.Setting
	for core := 0; core < 4; core++ {
		settings, _ = m.Decide(core, statsForCore(sys, core, true))
	}
	if settings == nil {
		t.Fatal("no settings")
	}
	sum := 0
	for _, s := range settings {
		if s.Size < arch.SizeSmall || s.Size > arch.SizeLarge {
			t.Fatalf("invalid size %v", s.Size)
		}
		sum += s.Ways
	}
	if sum != sys.LLC.Assoc {
		t.Fatalf("ways sum %d", sum)
	}
}

func TestDVFSOnlyKeepsEqualPartition(t *testing.T) {
	m, sys := managerFor(SchemeDVFSOnly, Model2)
	settings, ok := m.Decide(1, statsForCore(sys, 1, true))
	if !ok {
		t.Fatal("DVFS-only made no decision")
	}
	for _, s := range settings {
		if s.Ways != sys.BaselineWays() {
			t.Fatal("DVFS-only changed the partition")
		}
	}
}

func TestDVFSOnlyCannotScaleBelowBaselineWithoutSlack(t *testing.T) {
	// With the QoS target equal to predicted baseline performance and no
	// cache change, the minimum feasible frequency is the baseline one.
	m, sys := managerFor(SchemeDVFSOnly, Model2)
	settings, ok := m.Decide(0, statsForCore(sys, 0, true))
	if !ok {
		t.Fatal("no decision")
	}
	if settings[0].FreqIdx != sys.BaselineFreqIdx {
		t.Fatalf("DVFS-only moved frequency to %d without slack", settings[0].FreqIdx)
	}
}

func TestDVFSOnlySavesWithSlack(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	m := NewManager(Config{
		Sys:    sys,
		Power:  power.DefaultParams(sys),
		Scheme: SchemeDVFSOnly,
		Model:  Model2,
		Slack:  []float64{0.4, 0.4, 0.4, 0.4},
	})
	settings, ok := m.Decide(0, statsForCore(sys, 0, true))
	if !ok {
		t.Fatal("no decision")
	}
	if settings[0].FreqIdx >= sys.BaselineFreqIdx {
		t.Fatal("DVFS-only did not exploit slack")
	}
}

func TestPartitionOnlyKeepsBaselineFrequency(t *testing.T) {
	m, sys := managerFor(SchemePartitionOnly, Model2)
	var settings []arch.Setting
	for core := 0; core < 4; core++ {
		settings, _ = m.Decide(core, statsForCore(sys, core, core == 0))
	}
	if settings == nil {
		t.Fatal("no settings")
	}
	for _, s := range settings {
		if s.FreqIdx != sys.BaselineFreqIdx || s.Size != sys.BaselineSize {
			t.Fatal("RM1 changed frequency or size")
		}
	}
}

func TestManagerSlackValidation(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on slack length mismatch")
		}
	}()
	NewManager(Config{Sys: sys, Power: power.DefaultParams(sys), Slack: []float64{1}})
}

func TestSchemeStrings(t *testing.T) {
	names := map[Scheme]string{
		SchemeStatic:             "Static",
		SchemeDVFSOnly:           "DVFS-only",
		SchemePartitionOnly:      "RM1-Partitioning",
		SchemeCoordDVFSCache:     "RM2-DVFS+Cache",
		SchemeCoordCoreDVFSCache: "RM3-Core+DVFS+Cache",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
	if Scheme(99).String() == "" || ModelKind(99).String() == "" {
		t.Fatal("unknown enums must render")
	}
	for _, k := range []ModelKind{Model1, Model2, Model3} {
		if k.String() == "Model?" {
			t.Fatal("model name missing")
		}
	}
}

func TestManagerInvocationCount(t *testing.T) {
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	for core := 0; core < 4; core++ {
		m.Decide(core, statsForCore(sys, core, true))
	}
	if m.Invocations != 4 {
		t.Fatalf("Invocations = %d, want 4", m.Invocations)
	}
}
