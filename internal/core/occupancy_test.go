package core

import (
	"testing"

	"qosrma/internal/arch"
)

// TestVacantCoresDonateWays: with one core vacated, the coordinated
// manager must still reach a decision once the occupied cores have
// reported, and the occupied cores' allocation plus the idle surplus must
// cover the full associativity.
func TestVacantCoresDonateWays(t *testing.T) {
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	m.Vacate(3)
	if m.Occupied(3) {
		t.Fatal("core 3 still occupied after Vacate")
	}
	var got []int
	for core := 0; core < 3; core++ {
		s, ok := m.Decide(core, statsForCore(sys, core, core == 0))
		if core < 2 && ok {
			t.Fatalf("decision before all occupied cores reported (core %d)", core)
		}
		if core == 2 {
			if !ok {
				t.Fatal("no decision once every occupied core reported")
			}
			for i, set := range s {
				got = append(got, set.Ways)
				if i < 3 && set.Ways < 1 {
					t.Fatalf("occupied core %d got %d ways", i, set.Ways)
				}
			}
			if s[3] != sys.BaselineSetting() {
				t.Fatalf("vacant core not parked at baseline: %+v", s[3])
			}
			if got[0]+got[1]+got[2] > sys.LLC.Assoc {
				t.Fatalf("occupied cores over-allocated: %v", got)
			}
		}
	}
}

// TestVacateClearsHistory: a core vacated and re-occupied must behave like
// a fresh core — the manager must wait for its first statistics again
// rather than reusing the departed application's curve.
func TestVacateClearsHistory(t *testing.T) {
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	for core := 0; core < 4; core++ {
		if _, ok := m.Decide(core, statsForCore(sys, core, true)); ok != (core == 3) {
			t.Fatalf("unexpected decision state at core %d", core)
		}
	}
	m.Vacate(2)
	m.Occupy(2)
	// Core 2's history is gone: a decision invoked by another core must
	// stall on the re-occupied core's missing statistics.
	if _, ok := m.Decide(0, statsForCore(sys, 0, true)); ok {
		t.Fatal("decision used the departed application's curve")
	}
	if _, ok := m.Decide(2, statsForCore(sys, 2, false)); !ok {
		t.Fatal("no decision after the new tenant reported")
	}
}

// TestRebaseline returns every core to the equal partition.
func TestRebaseline(t *testing.T) {
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	for core := 0; core < 4; core++ {
		m.Decide(core, statsForCore(sys, core, core%2 == 0))
	}
	for _, s := range m.Rebaseline() {
		if s != sys.BaselineSetting() {
			t.Fatalf("rebaseline left %+v", s)
		}
	}
	for _, s := range m.Settings() {
		if s != sys.BaselineSetting() {
			t.Fatal("manager state not rebaselined")
		}
	}
}

// TestUncoordinatedWithVacancy: the UCP+DVFS strawman must not crash with
// vacant cores; vacant cores read as miss-free and keep the baseline.
func TestUncoordinatedWithVacancy(t *testing.T) {
	m, sys := managerFor(SchemeUCPDVFS, Model2)
	m.Vacate(1)
	m.Vacate(3)
	var settings = m.Settings()
	for _, core := range []int{0, 2} {
		s, ok := m.Decide(core, statsForCore(sys, core, true))
		if core == 2 {
			if !ok {
				t.Fatal("no uncoordinated decision with vacancies")
			}
			settings = s
		}
	}
	for _, i := range []int{1, 3} {
		if settings[i] != sys.BaselineSetting() {
			t.Fatalf("vacant core %d moved: %+v", i, settings[i])
		}
	}
	if settings[0].Ways < 1 || settings[2].Ways < 1 {
		t.Fatalf("occupied cores under-allocated: %+v", settings)
	}
}

// TestIdleCurve pins the idle stand-in: zero cost everywhere, including
// zero ways, so surplus absorption is always feasible.
func TestIdleCurve(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	c := IdleCurve(sys.LLC.Assoc, sys.BaselineSetting())
	for w := 0; w <= sys.LLC.Assoc; w++ {
		if c.EPI(w) != 0 || !c.Options[w].Feasible {
			t.Fatalf("idle curve not free at %d ways", w)
		}
	}
	alloc, ok := AllocateWays([]*Curve{c}, sys.LLC.Assoc)
	if !ok || alloc[0] != sys.LLC.Assoc {
		t.Fatalf("idle-only allocation = %v, %v (want the full surplus)", alloc, ok)
	}
}
