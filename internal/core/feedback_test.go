package core

import (
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/power"
)

func feedbackStats(sys arch.SystemConfig, ways int, mlp float64) *IntervalStats {
	st := fakeStats(sys, 2.2, 18, missProfile(sys.LLC.Assoc, 2e6, 3e5, 10), mlp)
	st.Setting.Ways = ways
	st.TotalMisses = st.ATDMisses[ways]
	st.LeadingMisses = st.TotalMisses / mlp
	return st
}

func TestFeedbackLearnsAndRecalls(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	tbl := NewFeedbackTable(sys.LLC.Assoc)
	st := feedbackStats(sys, 4, 2.5)
	if _, ok := tbl.MLPFor(st, 4); ok {
		t.Fatal("empty table returned a value")
	}
	tbl.Observe(st)
	got, ok := tbl.MLPFor(st, 4)
	if !ok || got != 2.5 {
		t.Fatalf("MLPFor = %v, %v; want 2.5, true", got, ok)
	}
	if _, ok := tbl.MLPFor(st, 10); ok {
		t.Fatal("unvisited way count returned a value")
	}
}

func TestFeedbackSignatureAllocationInvariant(t *testing.T) {
	// The same phase observed while running at a different allocation must
	// map to the same key, so values learned at one allocation are found
	// from statistics gathered at another.
	sys := arch.DefaultSystemConfig(4)
	tbl := NewFeedbackTable(sys.LLC.Assoc)
	at4 := feedbackStats(sys, 4, 2.5)
	at10 := feedbackStats(sys, 10, 1.6)
	tbl.Observe(at10) // learned while running at 10 ways
	got, ok := tbl.MLPFor(at4, 10)
	if !ok {
		t.Fatal("observation at 10 ways not visible from 4-way statistics")
	}
	if got != 1.6 {
		t.Fatalf("recalled MLP %v, want 1.6", got)
	}
	if tbl.Phases() != 1 {
		t.Fatalf("the two observations created %d phases, want 1", tbl.Phases())
	}
}

func TestFeedbackEWMA(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	tbl := NewFeedbackTable(sys.LLC.Assoc)
	tbl.Observe(feedbackStats(sys, 4, 2.0))
	tbl.Observe(feedbackStats(sys, 4, 3.0))
	got, _ := tbl.MLPFor(feedbackStats(sys, 4, 2.0), 4)
	want := (1-fbAlpha)*2.0 + fbAlpha*3.0
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("EWMA = %v, want %v", got, want)
	}
	if tbl.Observations() != 2 {
		t.Fatalf("observations = %d", tbl.Observations())
	}
}

func TestFeedbackDistinguishesPhases(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	tbl := NewFeedbackTable(sys.LLC.Assoc)
	heavy := feedbackStats(sys, 4, 2.5)
	light := fakeStats(sys, 4.0, 1, missProfile(sys.LLC.Assoc, 5e4, 4e4, 3), 1.2)
	tbl.Observe(heavy)
	tbl.Observe(light)
	if tbl.Phases() != 2 {
		t.Fatalf("phases = %d, want 2", tbl.Phases())
	}
	if _, ok := tbl.MLPFor(light, 4); !ok {
		t.Fatal("light phase not recallable")
	}
}

func TestFeedbackIgnoresDegenerateStats(t *testing.T) {
	tbl := NewFeedbackTable(16)
	tbl.Observe(&IntervalStats{}) // zero instructions
	if tbl.Observations() != 0 {
		t.Fatal("degenerate stats recorded")
	}
}

func TestPredictorUsesFeedback(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	tbl := NewFeedbackTable(sys.LLC.Assoc)
	st := feedbackStats(sys, 4, 2.5)
	// Teach the table that at 12 ways the MLP collapses to 1.2.
	learned := feedbackStats(sys, 12, 1.2)
	tbl.Observe(learned)

	p := &Predictor{Sys: &sys, Power: power.DefaultParams(sys), Kind: Model2}
	s := sys.BaselineSetting()
	s.Ways = 12
	without := p.Cycles(st, s)
	p.Feedback = tbl
	with := p.Cycles(st, s)
	if with <= without {
		t.Fatalf("feedback (true MLP 1.2 < assumed 2.5) must predict more cycles: %v vs %v",
			with, without)
	}
}

func TestManagerFeedbackWiring(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	m := NewManager(Config{
		Sys: sys, Power: power.DefaultParams(sys),
		Scheme: SchemeCoordDVFSCache, Model: Model2, Feedback: true,
	})
	if m.FeedbackFor(0) == nil {
		t.Fatal("feedback tables not created")
	}
	st := statsForCore(sys, 0, true)
	m.Decide(0, st)
	if m.FeedbackFor(0).Observations() != 1 {
		t.Fatal("Decide did not observe the interval")
	}
	if m.pred.Feedback != nil {
		t.Fatal("predictor feedback pointer leaked past Decide")
	}
	m2 := NewManager(Config{Sys: sys, Power: power.DefaultParams(sys)})
	if m2.FeedbackFor(0) != nil {
		t.Fatal("feedback table present when disabled")
	}
}

func TestUncoordinatedSchemeProducesValidSettings(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	m := NewManager(Config{
		Sys: sys, Power: power.DefaultParams(sys),
		Scheme: SchemeUCPDVFS, Model: Model2,
	})
	var settings []arch.Setting
	var ok bool
	for core := 0; core < 4; core++ {
		settings, ok = m.Decide(core, statsForCore(sys, core, core%2 == 0))
	}
	if !ok {
		t.Fatal("no decision after all cores reported")
	}
	sum := 0
	for _, s := range settings {
		if s.Ways < 1 {
			t.Fatalf("core got %d ways", s.Ways)
		}
		if s.Size != sys.BaselineSize {
			t.Fatal("uncoordinated scheme must not resize cores")
		}
		sum += s.Ways
	}
	if sum != sys.LLC.Assoc {
		t.Fatalf("ways sum %d", sum)
	}
	if SchemeUCPDVFS.String() != "UCP+DVFS-uncoord" {
		t.Fatal("scheme name wrong")
	}
}

func TestUncoordinatedWaitsForAllCores(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	m := NewManager(Config{
		Sys: sys, Power: power.DefaultParams(sys),
		Scheme: SchemeUCPDVFS, Model: Model2,
	})
	if _, ok := m.Decide(0, statsForCore(sys, 0, true)); ok {
		t.Fatal("decided before warm-up completed")
	}
}
