package core

import (
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/power"
)

// decideSequential drives a fresh manager the way the simulator does —
// one Decide per core in core order — and returns the final invocation's
// answer, the reference DecideAll must reproduce bit for bit.
func decideSequential(scheme Scheme, kind ModelKind, slack []float64, feedback bool, st []*IntervalStats) ([]arch.Setting, bool) {
	sys := arch.DefaultSystemConfig(len(st))
	m := NewManager(Config{
		Sys:      sys,
		Power:    power.DefaultParams(sys),
		Scheme:   scheme,
		Model:    kind,
		Slack:    slack,
		Feedback: feedback,
	})
	var (
		settings []arch.Setting
		ok       bool
	)
	for i, s := range st {
		settings, ok = m.Decide(i, s)
	}
	return settings, ok
}

// TestDecideAllMatchesSequential pins the batch decision the serving
// shards use to the sequential library order across every scheme and a
// spread of sensitivity mixes.
func TestDecideAllMatchesSequential(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	mixes := [][]bool{
		{true, true, false, false},
		{false, false, false, false},
		{true, true, true, true},
		{true, false, true, false},
	}
	schemes := []struct {
		scheme Scheme
		kind   ModelKind
	}{
		{SchemeStatic, Model2},
		{SchemeDVFSOnly, Model2},
		{SchemePartitionOnly, Model2},
		{SchemeCoordDVFSCache, Model2},
		{SchemeCoordCoreDVFSCache, Model3},
		{SchemeUCPDVFS, Model2},
	}
	slacks := [][]float64{nil, {0.4, 0.4, 0.4, 0.4}, {0, 0.4, 0, 0.4}}
	for _, sc := range schemes {
		for mi, mix := range mixes {
			for si, slack := range slacks {
				for _, feedback := range []bool{false, true} {
					st := make([]*IntervalStats, len(mix))
					for i, sensitive := range mix {
						st[i] = statsForCore(sys, i, sensitive)
					}
					wantSettings, wantOK := decideSequential(sc.scheme, sc.kind, slack, feedback, st)

					m := NewManager(Config{
						Sys:      sys,
						Power:    power.DefaultParams(sys),
						Scheme:   sc.scheme,
						Model:    sc.kind,
						Slack:    slack,
						Feedback: feedback,
					})
					gotSettings, gotOK := m.DecideAll(st)
					if gotOK != wantOK {
						t.Fatalf("%v mix %d slack %d fb=%v: DecideAll ok=%v, sequential %v",
							sc.scheme, mi, si, feedback, gotOK, wantOK)
					}
					if !gotOK {
						continue
					}
					for c := range gotSettings {
						if gotSettings[c] != wantSettings[c] {
							t.Fatalf("%v mix %d slack %d fb=%v core %d: DecideAll %v, sequential %v",
								sc.scheme, mi, si, feedback, c, gotSettings[c], wantSettings[c])
						}
					}

					if feedback {
						// The feedback table is stateful by design; the
						// reuse invariant below is for the stateless shape
						// the serving shards use.
						continue
					}
					// A second DecideAll on the same (reused) manager must
					// answer identically: no state leaks between queries.
					again, againOK := m.DecideAll(st)
					if againOK != gotOK {
						t.Fatalf("%v mix %d: repeat DecideAll ok=%v, first %v", sc.scheme, mi, againOK, gotOK)
					}
					for c := range again {
						if again[c] != gotSettings[c] {
							t.Fatalf("%v mix %d core %d: repeat DecideAll drifted", sc.scheme, mi, c)
						}
					}
				}
			}
		}
	}
}

// TestDecideAllLengthMismatchPanics guards the API contract.
func TestDecideAllLengthMismatchPanics(t *testing.T) {
	m, sys := managerFor(SchemeCoordDVFSCache, Model2)
	defer func() {
		if recover() == nil {
			t.Fatal("length mismatch did not panic")
		}
	}()
	m.DecideAll([]*IntervalStats{statsForCore(sys, 0, true)})
}
