package core

import (
	"fmt"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/power"
)

// Scheme identifies a resource-management algorithm evaluated in the paper.
type Scheme int

const (
	// SchemeStatic keeps the baseline allocation (the QoS reference).
	SchemeStatic Scheme = iota
	// SchemeDVFSOnly controls only per-core frequency at the fixed equal
	// partition. Under QoS targets defined by the baseline it has no room
	// to scale down (the paper notes it "cannot save energy without
	// degrading the performance").
	SchemeDVFSOnly
	// SchemePartitionOnly (RM1) repartitions the LLC at the baseline
	// frequency and size, subject to QoS feasibility.
	SchemePartitionOnly
	// SchemeCoordDVFSCache (RM2) coordinates per-core DVFS with LLC
	// partitioning — the IPDPS 2019 / Paper I contribution.
	SchemeCoordDVFSCache
	// SchemeCoordCoreDVFSCache (RM3) additionally reconfigures the core
	// micro-architecture — the Paper II contribution.
	SchemeCoordCoreDVFSCache
	// SchemeUCPDVFS is the uncoordinated design the paper argues against:
	// the LLC is partitioned by miss-minimizing UCP lookahead with no
	// notion of per-application QoS, and an independent QoS-aware DVFS
	// controller then picks each core's minimum feasible frequency given
	// whatever allocation it was handed.
	SchemeUCPDVFS
)

// String names the scheme as the papers do.
func (s Scheme) String() string {
	switch s {
	case SchemeStatic:
		return "Static"
	case SchemeDVFSOnly:
		return "DVFS-only"
	case SchemePartitionOnly:
		return "RM1-Partitioning"
	case SchemeCoordDVFSCache:
		return "RM2-DVFS+Cache"
	case SchemeCoordCoreDVFSCache:
		return "RM3-Core+DVFS+Cache"
	case SchemeUCPDVFS:
		return "UCP+DVFS-uncoord"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Config configures a resource manager instance.
type Config struct {
	Sys    arch.SystemConfig
	Power  power.Params
	Scheme Scheme
	Model  ModelKind
	// Slack is the per-core QoS relaxation (fraction of tolerated
	// execution-time increase); nil means zero for every core.
	Slack []float64
	// Feedback enables the phase-history MLP table (the thesis' software
	// alternative to the MLP-ATD hardware; see FeedbackTable).
	Feedback bool
}

// Manager is the online resource manager. It retains the most recent energy
// curve per core (the paper's "other cores already available" state) and,
// on each invocation, rebuilds the invoking core's curve and re-runs the
// global optimization.
type Manager struct {
	cfg       Config
	pred      Predictor
	curves    []*Curve
	settings  []arch.Setting
	feedback  []*FeedbackTable // per core; nil when disabled
	lastStats []*IntervalStats // per core; kept for the uncoordinated scheme

	localOpts []LocalOptions // per-core search space, precomputed
	scratch   *Curve         // reusable curve for the single-core schemes
	uncoord   []*Curve       // reusable curves for the uncoordinated scheme
	ways      WaysScratch    // reusable global-reduction state
	profiles  [][]float64    // reusable miss-profile vector (UCP scheme)

	// occupied tracks which cores currently host an application (all of
	// them in the classic closed-world simulation). Vacant cores take no
	// part in the QoS optimization: they contribute the shared idle curve,
	// which absorbs surplus cache ways at zero cost.
	occupied []bool
	vacant   int       // number of unoccupied cores
	idle     *Curve    // shared zero-cost stand-in curve for vacant cores
	decision []*Curve  // scratch curve set mixing real and idle curves
	zeroProf []float64 // scratch all-zero miss profile for vacant cores (UCP)

	// Invocations counts Decide calls (diagnostics).
	Invocations int
}

// NewManager builds a resource manager with every core at the baseline
// setting.
func NewManager(cfg Config) *Manager {
	n := cfg.Sys.NumCores
	if cfg.Slack == nil {
		cfg.Slack = make([]float64, n)
	}
	if len(cfg.Slack) != n {
		panic("core: slack vector length mismatch")
	}
	m := &Manager{
		cfg:       cfg,
		pred:      Predictor{Sys: &cfg.Sys, Power: cfg.Power, Kind: cfg.Model},
		curves:    make([]*Curve, n),
		settings:  make([]arch.Setting, n),
		lastStats: make([]*IntervalStats, n),
		occupied:  make([]bool, n),
	}
	for i := range m.occupied {
		m.occupied[i] = true
	}
	if cfg.Feedback {
		m.feedback = make([]*FeedbackTable, n)
		for i := range m.feedback {
			m.feedback[i] = NewFeedbackTable(cfg.Sys.LLC.Assoc)
		}
	}
	for i := range m.settings {
		m.settings[i] = cfg.Sys.BaselineSetting()
	}
	m.localOpts = make([]LocalOptions, n)
	for i := range m.localOpts {
		m.localOpts[i] = m.computeLocalOptions(i)
	}
	return m
}

// Settings returns the currently applied per-core settings.
func (m *Manager) Settings() []arch.Setting {
	return append([]arch.Setting(nil), m.settings...)
}

// Slack returns the QoS relaxation configured for a core.
func (m *Manager) Slack(core int) float64 { return m.cfg.Slack[core] }

// Vacate marks the core unoccupied and clears its management state — the
// retained energy curve, the last interval statistics and the phase-history
// feedback table — so a later application placed on the core inherits
// nothing from its predecessor. The core is parked at the baseline setting
// and thereafter contributes a zero-cost curve to the global optimization
// (its cache ways become surplus the occupied cores can claim). Used by the
// open-system cluster simulator when a job departs.
func (m *Manager) Vacate(core int) {
	if !m.occupied[core] {
		return
	}
	m.occupied[core] = false
	m.vacant++
	m.curves[core] = nil
	m.lastStats[core] = nil
	if m.feedback != nil {
		m.feedback[core] = NewFeedbackTable(m.cfg.Sys.LLC.Assoc)
	}
	m.settings[core] = m.cfg.Sys.BaselineSetting()
}

// Occupy marks the core occupied again (a new application was placed on
// it). The core stays at the baseline setting until its first completed
// interval gives the manager statistics to optimize with.
func (m *Manager) Occupy(core int) {
	if m.occupied[core] {
		return
	}
	m.occupied[core] = true
	m.vacant--
}

// Occupied reports whether an application currently occupies the core.
func (m *Manager) Occupied(core int) bool { return m.occupied[core] }

// Rebaseline returns every core to the baseline allocation — the safe
// equal partition an arrival falls back to until fresh statistics let the
// optimization repartition — and returns the settings for the simulator to
// apply (charging reconfiguration overheads where allocations change).
func (m *Manager) Rebaseline() []arch.Setting {
	for i := range m.settings {
		m.settings[i] = m.cfg.Sys.BaselineSetting()
	}
	return m.Settings()
}

// decisionCurves returns the curve set for the global reduction: occupied
// cores contribute their own curves and vacant cores the shared idle curve.
// With every core occupied it is the curves slice itself (the closed-world
// fast path allocates nothing).
func (m *Manager) decisionCurves() []*Curve {
	if m.vacant == 0 {
		return m.curves
	}
	if m.idle == nil {
		m.idle = IdleCurve(m.cfg.Sys.LLC.Assoc, m.cfg.Sys.BaselineSetting())
		m.decision = make([]*Curve, len(m.curves))
	}
	for i, c := range m.curves {
		if m.occupied[i] {
			m.decision[i] = c
		} else {
			m.decision[i] = m.idle
		}
	}
	return m.decision
}

// Scheme returns the configured scheme.
func (m *Manager) Scheme() Scheme { return m.cfg.Scheme }

// FeedbackFor exposes a core's phase-history table (nil when the feedback
// extension is disabled). Diagnostics only.
func (m *Manager) FeedbackFor(core int) *FeedbackTable {
	if m.feedback == nil {
		return nil
	}
	return m.feedback[core]
}

// computeLocalOptions derives the per-core search space for the configured
// scheme; NewManager precomputes it once per core (localOptions reads it).
func (m *Manager) computeLocalOptions(core int) LocalOptions {
	sys := m.cfg.Sys
	maxWays := sys.LLC.Assoc - (sys.NumCores - 1)
	opt := LocalOptions{
		Slack:   m.cfg.Slack[core],
		MaxWays: maxWays,
	}
	switch m.cfg.Scheme {
	case SchemeStatic:
		// Static never re-decides — Decide answers before consulting the
		// search space — so only the shape matters: pin the baseline point.
		opt.Sizes = []arch.CoreSize{sys.BaselineSize}
		opt.Freqs = []int{sys.BaselineFreqIdx}
	case SchemePartitionOnly:
		opt.Sizes = []arch.CoreSize{sys.BaselineSize}
		opt.Freqs = []int{sys.BaselineFreqIdx}
	case SchemeDVFSOnly, SchemeUCPDVFS:
		opt.Sizes = []arch.CoreSize{sys.BaselineSize}
	case SchemeCoordDVFSCache:
		opt.Sizes = []arch.CoreSize{sys.BaselineSize}
	case SchemeCoordCoreDVFSCache:
		opt.Sizes = []arch.CoreSize{arch.SizeSmall, arch.SizeMedium, arch.SizeLarge}
		opt.MinEnergyFreq = true
	}
	if opt.Freqs == nil {
		// Materialize the "all frequencies" default once per manager so
		// BuildCurveInto never allocates the index slice per invocation.
		opt.Freqs = make([]int, len(sys.DVFS))
		for i := range opt.Freqs {
			opt.Freqs[i] = i
		}
	}
	return opt
}

// localOptions returns the per-core search space for the configured
// scheme. With vacancies, the per-core way cap widens to reserve one way
// only per *occupied* co-runner, so a lightly loaded machine can actually
// grant a tenant the ways its idle neighbours released (curves built
// before an occupancy change keep their narrower cap until their core's
// next rebuild — transiently conservative, never infeasible, and the
// closed-world path is untouched).
func (m *Manager) localOptions(core int) LocalOptions {
	opt := m.localOpts[core]
	if m.vacant > 0 {
		opt.MaxWays = m.cfg.Sys.LLC.Assoc - (m.cfg.Sys.NumCores - m.vacant - 1)
	}
	return opt
}

// Decide is the RMA invocation: core invoker has completed an interval with
// the given statistics. It returns the new settings for all cores and true,
// or nil and false when the manager keeps the current settings (static
// scheme, warm-up, or no feasible allocation).
//
//qosrma:noalloc
func (m *Manager) Decide(invoker int, st *IntervalStats) ([]arch.Setting, bool) {
	m.Invocations++
	sys := m.cfg.Sys

	if m.feedback != nil {
		// Record the completed interval in the invoker's phase table and
		// make the table available to the predictor for this invocation.
		m.feedback[invoker].Observe(st)
		m.pred.Feedback = m.feedback[invoker]
		//qosrma:allow(noalloc) deferred reset closure is open-coded and never escapes
		defer func() { m.pred.Feedback = nil }()
	}

	m.lastStats[invoker] = st

	switch m.cfg.Scheme {
	case SchemeStatic:
		return nil, false

	case SchemeUCPDVFS:
		return m.decideUncoordinated()

	case SchemeDVFSOnly:
		// Frequency-only control at the fixed equal partition: pick the
		// cheapest feasible frequency for the invoker alone.
		m.scratch = m.pred.BuildCurveInto(st, m.localOptions(invoker), m.scratch)
		o := m.scratch.Options[sys.BaselineWays()]
		if !o.Feasible {
			return nil, false
		}
		m.settings[invoker] = arch.Setting{
			Size: o.Size, FreqIdx: o.FreqIdx, Ways: sys.BaselineWays(),
		}
		return m.Settings(), true

	case SchemePartitionOnly, SchemeCoordDVFSCache, SchemeCoordCoreDVFSCache:
		// Handled by the coordinated reduction below.
	}

	// Coordinated schemes: rebuild the invoker's curve (reusing its buffer
	// across intervals), reuse the last curves of the other cores (thesis
	// Fig. 3.1/3.2). Vacant cores stand in with the shared idle curve.
	m.curves[invoker] = m.pred.BuildCurveInto(st, m.localOptions(invoker), m.curves[invoker])
	curves := m.decisionCurves()
	for i, c := range curves {
		if c == nil && m.occupied[i] {
			// First invocations: some cores have no statistics yet — keep
			// the baseline setting (thesis Chapter 2, footnote 2).
			return nil, false
		}
	}
	alloc, ok := AllocateWaysInto(curves, sys.LLC.Assoc, &m.ways)
	if !ok {
		return nil, false
	}
	m.settings = SettingsFromCurvesInto(m.settings, curves, alloc)
	for i := range m.settings {
		if !m.occupied[i] {
			// Nothing executes on a vacant core; park it at the baseline
			// (the ways the idle curve absorbed are simply unclaimed).
			m.settings[i] = sys.BaselineSetting()
		}
	}
	return m.Settings(), true
}

// DecideAll is the one-shot batch form of Decide: statistics for every
// occupied core arrive together and the manager answers with the settings
// the sequential invocation order (Decide(0, st[0]) … Decide(n-1, st[n-1]))
// would have produced — bit-identically, a property the decision service's
// tests pin. Every occupied core's curve is rebuilt into its reusable
// buffer, so a manager kept per serving shard answers repeated queries
// without allocating and without leaking curve state between queries
// (stale curves from a previous query are always overwritten before the
// global reduction runs). Entries of st may be nil for vacant cores.
//
//qosrma:noalloc
func (m *Manager) DecideAll(st []*IntervalStats) ([]arch.Setting, bool) {
	if len(st) != len(m.settings) {
		panic("core: DecideAll statistics length mismatch")
	}
	m.Invocations++
	sys := m.cfg.Sys

	if m.feedback != nil {
		for i, s := range st {
			if s != nil && m.occupied[i] {
				m.feedback[i].Observe(s)
			}
		}
	}
	for i, s := range st {
		if m.occupied[i] && s != nil {
			m.lastStats[i] = s
		}
	}

	switch m.cfg.Scheme {
	case SchemeStatic:
		return nil, false

	case SchemeUCPDVFS:
		// The sequential order's decisive invocation is the last core with
		// statistics, and its Decide runs the whole uncoordinated pass with
		// that core's feedback table installed — reproduce exactly that.
		if m.feedback != nil {
			for i := len(st) - 1; i >= 0; i-- {
				if m.occupied[i] && st[i] != nil {
					m.pred.Feedback = m.feedback[i]
					break
				}
			}
			//qosrma:allow(noalloc) deferred reset closure is open-coded and never escapes
			defer func() { m.pred.Feedback = nil }()
		}
		return m.decideUncoordinated()

	case SchemeDVFSOnly:
		// Independent per-core frequency choices, applied in core order
		// exactly as the sequential loop would: infeasible cores keep their
		// current setting, and the call reports a decision when the final
		// core's did (matching the loop's last return value).
		changed := false
		for i, s := range st {
			if !m.occupied[i] || s == nil {
				continue
			}
			if m.feedback != nil {
				m.pred.Feedback = m.feedback[i]
			}
			m.scratch = m.pred.BuildCurveInto(s, m.localOptions(i), m.scratch)
			o := m.scratch.Options[sys.BaselineWays()]
			changed = o.Feasible
			if !o.Feasible {
				continue
			}
			m.settings[i] = arch.Setting{
				Size: o.Size, FreqIdx: o.FreqIdx, Ways: sys.BaselineWays(),
			}
		}
		m.pred.Feedback = nil
		if !changed {
			return nil, false
		}
		return m.Settings(), true

	case SchemePartitionOnly, SchemeCoordDVFSCache, SchemeCoordCoreDVFSCache:
		// Handled by the coordinated reduction below.
	}

	// Coordinated schemes: rebuild every occupied core's curve, then run
	// one global reduction (the sequential loop's intermediate reductions
	// are unobservable — only the final one, over these same curves,
	// determines the answer).
	for i, s := range st {
		if !m.occupied[i] {
			continue
		}
		if s == nil {
			if m.curves[i] == nil {
				return nil, false // warm-up: a core has no statistics yet
			}
			continue
		}
		if m.feedback != nil {
			m.pred.Feedback = m.feedback[i]
		}
		m.curves[i] = m.pred.BuildCurveInto(s, m.localOptions(i), m.curves[i])
	}
	m.pred.Feedback = nil
	curves := m.decisionCurves()
	alloc, ok := AllocateWaysInto(curves, sys.LLC.Assoc, &m.ways)
	if !ok {
		return nil, false
	}
	m.settings = SettingsFromCurvesInto(m.settings, curves, alloc)
	for i := range m.settings {
		if !m.occupied[i] {
			m.settings[i] = sys.BaselineSetting()
		}
	}
	return m.Settings(), true
}

// decideUncoordinated implements the independent-controller design: UCP
// partitions the cache to minimize total misses, then a QoS-aware DVFS
// controller independently picks each core's frequency for the allocation
// it was handed. When a core's QoS cannot be met at its UCP share even at
// the maximum frequency, it runs at maximum frequency — the violation the
// paper's coordinated design exists to prevent.
func (m *Manager) decideUncoordinated() ([]arch.Setting, bool) {
	sys := m.cfg.Sys
	if cap(m.profiles) < len(m.lastStats) {
		m.profiles = make([][]float64, len(m.lastStats))
	}
	profiles := m.profiles[:len(m.lastStats)]
	for i, st := range m.lastStats {
		if !m.occupied[i] {
			// Vacant cores miss nothing: UCP hands them the minimum share.
			if m.zeroProf == nil {
				m.zeroProf = make([]float64, sys.LLC.Assoc+1)
			}
			profiles[i] = m.zeroProf
			continue
		}
		if st == nil {
			return nil, false // warm-up: keep the baseline
		}
		profiles[i] = st.ATDMisses
	}
	alloc := cache.UCPLookahead(profiles, sys.LLC.Assoc, 1)
	if m.uncoord == nil {
		m.uncoord = make([]*Curve, len(m.lastStats))
	}
	for i, st := range m.lastStats {
		if !m.occupied[i] {
			m.settings[i] = sys.BaselineSetting()
			continue
		}
		m.uncoord[i] = m.pred.BuildCurveInto(st, m.localOptions(i), m.uncoord[i])
		if o := m.uncoord[i].Options[alloc[i]]; o.Feasible {
			m.settings[i] = arch.Setting{Size: o.Size, FreqIdx: o.FreqIdx, Ways: alloc[i]}
		} else {
			m.settings[i] = arch.Setting{
				Size: sys.BaselineSize, FreqIdx: len(sys.DVFS) - 1, Ways: alloc[i],
			}
		}
	}
	return m.Settings(), true
}
