package core

import (
	"math"
	"testing"
	"testing/quick"

	"qosrma/internal/arch"
	"qosrma/internal/stats"
)

func TestBuildCurveBaselineAlwaysFeasible(t *testing.T) {
	// With zero slack the QoS target is the model's own baseline
	// prediction, so the baseline setting itself must be feasible at the
	// baseline way count.
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 15, missProfile(16, 2e6, 3e5, 12), 2)
	curve := p.BuildCurve(st, LocalOptions{MaxWays: 13})
	o := curve.Options[sys.BaselineWays()]
	if !o.Feasible {
		t.Fatal("baseline way count infeasible")
	}
	if o.FreqIdx > sys.BaselineFreqIdx {
		t.Fatalf("fmin at baseline ways (%d) above the baseline frequency (%d)",
			o.FreqIdx, sys.BaselineFreqIdx)
	}
}

func TestBuildCurveFminDecreasesWithWays(t *testing.T) {
	// A cache-sensitive profile needs less frequency when given more ways.
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 20, missProfile(16, 3e6, 3e5, 14), 2)
	curve := p.BuildCurve(st, LocalOptions{MaxWays: 13})
	prev := len(sys.DVFS)
	for w := 2; w <= 13; w++ {
		o := curve.Options[w]
		if !o.Feasible {
			continue
		}
		if o.FreqIdx > prev {
			t.Fatalf("fmin increased with more ways at w=%d", w)
		}
		prev = o.FreqIdx
	}
}

func TestBuildCurveRespectsWayBounds(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 10, missProfile(16, 1e6, 2e5, 10), 2)
	curve := p.BuildCurve(st, LocalOptions{MaxWays: 13})
	if !math.IsInf(curve.EPI(0), 1) {
		t.Fatal("w=0 must be infeasible")
	}
	for w := 14; w <= 16; w++ {
		if !math.IsInf(curve.EPI(w), 1) {
			t.Fatalf("w=%d beyond MaxWays must be infeasible", w)
		}
	}
	if !math.IsInf(curve.EPI(-1), 1) || !math.IsInf(curve.EPI(99), 1) {
		t.Fatal("out-of-range EPI must be +Inf")
	}
}

func TestBuildCurvePinnedFrequency(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 15, missProfile(16, 2e6, 3e5, 12), 2)
	curve := p.BuildCurve(st, LocalOptions{
		Freqs:   []int{sys.BaselineFreqIdx},
		MaxWays: 13,
	})
	for w := 1; w <= 13; w++ {
		if o := curve.Options[w]; o.Feasible && o.FreqIdx != sys.BaselineFreqIdx {
			t.Fatalf("pinned frequency violated at w=%d", w)
		}
	}
}

func TestBuildCurveMinEnergyNeverWorseThanFmin(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model2)
	st := fakeStats(sys, 2.5, 15, missProfile(16, 2e6, 3e5, 12), 2)
	fmin := p.BuildCurve(st, LocalOptions{MaxWays: 13})
	all := p.BuildCurve(st, LocalOptions{MaxWays: 13, MinEnergyFreq: true})
	for w := 1; w <= 13; w++ {
		if all.EPI(w) > fmin.EPI(w)+1e-15 {
			t.Fatalf("min-energy search worse than fmin at w=%d", w)
		}
	}
}

func TestRM3CurveAtLeastAsGoodAsRM2Curve(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	p := testPredictor(sys, Model3)
	st := fakeStats(sys, 2.5, 18, missProfile(16, 2.5e6, 3e5, 12), 2)
	rm2 := p.BuildCurve(st, LocalOptions{
		Sizes: []arch.CoreSize{sys.BaselineSize}, MaxWays: 13})
	rm3 := p.BuildCurve(st, LocalOptions{
		Sizes:         []arch.CoreSize{arch.SizeSmall, arch.SizeMedium, arch.SizeLarge},
		MinEnergyFreq: true,
		MaxWays:       13,
	})
	for w := 1; w <= 13; w++ {
		if rm3.EPI(w) > rm2.EPI(w)+1e-15 {
			t.Fatalf("RM3 curve worse than RM2 at w=%d: %v vs %v",
				w, rm3.EPI(w), rm2.EPI(w))
		}
	}
}

// randomCurve builds a curve with random finite values in [1,assoc] ways.
func randomCurve(rng *stats.RNG, assoc, maxWays int) *Curve {
	c := &Curve{Options: make([]Option, assoc+1)}
	for w := range c.Options {
		c.Options[w] = Option{EPI: math.Inf(1)}
	}
	for w := 1; w <= maxWays; w++ {
		c.Options[w] = Option{EPI: rng.Float64()*10 + 0.1, Feasible: true}
	}
	return c
}

func TestAllocateWaysMatchesBruteForce(t *testing.T) {
	f := func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		const assoc = 8
		n := 2 + rng.Intn(2) // 2..3 cores
		curves := make([]*Curve, n)
		for i := range curves {
			curves[i] = randomCurve(rng, assoc, assoc-(n-1))
		}
		alloc, ok := AllocateWays(curves, assoc)
		if !ok {
			return false
		}
		got := TotalEPI(curves, alloc)

		// Brute force.
		best := math.Inf(1)
		var rec func(core, remaining int, sum float64)
		rec = func(core, remaining int, sum float64) {
			if core == n-1 {
				if e := curves[core].EPI(remaining); !math.IsInf(e, 1) {
					if sum+e < best {
						best = sum + e
					}
				}
				return
			}
			for w := 1; w <= remaining-(n-core-1); w++ {
				if e := curves[core].EPI(w); !math.IsInf(e, 1) {
					rec(core+1, remaining-w, sum+e)
				}
			}
		}
		rec(0, assoc, 0)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateWaysUsesAllWays(t *testing.T) {
	rng := stats.NewRNG(7)
	curves := []*Curve{
		randomCurve(rng, 16, 13), randomCurve(rng, 16, 13),
		randomCurve(rng, 16, 13), randomCurve(rng, 16, 13),
	}
	alloc, ok := AllocateWays(curves, 16)
	if !ok {
		t.Fatal("allocation failed")
	}
	sum := 0
	for _, w := range alloc {
		if w < 1 {
			t.Fatalf("core got %d ways", w)
		}
		sum += w
	}
	if sum != 16 {
		t.Fatalf("allocation %v sums to %d, want 16", alloc, sum)
	}
}

func TestAllocateWaysInfeasible(t *testing.T) {
	c := &Curve{Options: make([]Option, 9)}
	for w := range c.Options {
		c.Options[w] = Option{EPI: math.Inf(1)}
	}
	if _, ok := AllocateWays([]*Curve{c, c}, 8); ok {
		t.Fatal("expected infeasibility")
	}
	if _, ok := AllocateWays(nil, 8); ok {
		t.Fatal("empty input should be infeasible")
	}
}

func TestSettingsFromCurves(t *testing.T) {
	rng := stats.NewRNG(9)
	curves := []*Curve{randomCurve(rng, 8, 7), randomCurve(rng, 8, 7)}
	curves[0].Options[3] = Option{Size: arch.SizeLarge, FreqIdx: 5, EPI: 0.5, Feasible: true}
	s := SettingsFromCurves(curves, []int{3, 5})
	if s[0].Ways != 3 || s[0].Size != arch.SizeLarge || s[0].FreqIdx != 5 {
		t.Fatalf("settings wrong: %+v", s[0])
	}
	if s[1].Ways != 5 {
		t.Fatalf("settings wrong: %+v", s[1])
	}
}

// naiveCurve is the reference local optimization: the original unhoisted
// search that evaluates Predictor.IPS and Predictor.EPI per candidate.
// BuildCurve must match it bit-for-bit (the hoisted arithmetic is required
// to stay term-for-term identical to the model methods).
func naiveCurve(p *Predictor, st *IntervalStats, opt LocalOptions) *Curve {
	assoc := p.Sys.LLC.Assoc
	if opt.MaxWays <= 0 || opt.MaxWays > assoc {
		opt.MaxWays = assoc
	}
	freqs := opt.Freqs
	if freqs == nil {
		freqs = make([]int, len(p.Sys.DVFS))
		for i := range freqs {
			freqs[i] = i
		}
	}
	sizes := opt.Sizes
	if sizes == nil {
		sizes = []arch.CoreSize{p.Sys.BaselineSize}
	}
	target := p.QoSTargetIPS(st, opt.Slack)
	curve := &Curve{Core: st.Core, Options: make([]Option, assoc+1)}
	for w := 0; w <= assoc; w++ {
		curve.Options[w] = Option{EPI: math.Inf(1)}
		if w < 1 || w > opt.MaxWays {
			continue
		}
		best := &curve.Options[w]
		for _, size := range sizes {
			for _, fi := range freqs {
				s := arch.Setting{Size: size, FreqIdx: fi, Ways: w}
				if p.IPS(st, s) < target {
					continue
				}
				epi := p.EPI(st, s)
				if epi < best.EPI {
					*best = Option{Size: size, FreqIdx: fi, EPI: epi, Feasible: true}
				}
				if !opt.MinEnergyFreq {
					break
				}
			}
		}
	}
	return curve
}

// TestBuildCurveMatchesNaiveSearch locks in the bit-equality of the
// hoisted BuildCurve against the naive per-candidate model evaluation,
// across both frequency rules, all size sets, slack values, and a spread
// of synthetic profiles.
func TestBuildCurveMatchesNaiveSearch(t *testing.T) {
	sys := arch.DefaultSystemConfig(4)
	rng := stats.NewRNG(1234)
	sizeSets := [][]arch.CoreSize{
		nil,
		{sys.BaselineSize},
		{arch.SizeSmall, arch.SizeMedium, arch.SizeLarge},
	}
	for trial := 0; trial < 40; trial++ {
		ilp := 1 + rng.Float64()*4
		apki := rng.Float64() * 30
		total := 1e5 + rng.Float64()*5e6
		floor := total * rng.Float64() * 0.5
		knee := 2 + rng.Intn(12)
		mlp := 1 + rng.Float64()*4
		st := fakeStats(sys, ilp, apki, missProfile(sys.LLC.Assoc, total, floor, knee), mlp)
		for kind := Model1; kind <= Model3; kind++ {
			p := testPredictor(sys, kind)
			opt := LocalOptions{
				Sizes:         sizeSets[trial%len(sizeSets)],
				MinEnergyFreq: trial%2 == 0,
				Slack:         float64(trial%3) * 0.2,
				MaxWays:       sys.LLC.Assoc - (sys.NumCores - 1),
			}
			want := naiveCurve(p, st, opt)
			got := p.BuildCurve(st, opt)
			for w := range want.Options {
				if got.Options[w] != want.Options[w] {
					t.Fatalf("trial %d kind %v w=%d: hoisted %+v != naive %+v",
						trial, kind, w, got.Options[w], want.Options[w])
				}
			}
		}
	}
}
