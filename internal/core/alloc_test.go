package core

import (
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/power"
)

// These pins back the //qosrma:noalloc annotations in this package
// (qosrmavet's static check is necessary but not sufficient — the pins
// measure the steady state the annotations promise). Decide and
// DecideAll are pinned at exactly one allocation per call: the returned
// settings slice is an intentional defensive copy because callers
// retain it; everything on the way there reuses Manager-held scratch.

func warmManager(tb testing.TB, scheme Scheme, kind ModelKind) (*Manager, arch.SystemConfig, []*IntervalStats) {
	tb.Helper()
	sys := arch.DefaultSystemConfig(4)
	m := NewManager(Config{
		Sys:    sys,
		Power:  power.DefaultParams(sys),
		Scheme: scheme,
		Model:  kind,
	})
	st := make([]*IntervalStats, sys.NumCores)
	for i := range st {
		st[i] = statsForCore(sys, i, i%2 == 0)
	}
	if _, ok := m.DecideAll(st); !ok {
		tb.Fatal("warm-up DecideAll made no decision")
	}
	return m, sys, st
}

func TestDecideAllSteadyStateAllocs(t *testing.T) {
	m, _, st := warmManager(t, SchemeCoordDVFSCache, Model2)
	got := testing.AllocsPerRun(100, func() {
		if _, ok := m.DecideAll(st); !ok {
			t.Fatal("DecideAll made no decision")
		}
	})
	if got != 1 {
		t.Fatalf("DecideAll allocated %.0f times per call, want exactly 1 (the returned settings copy)", got)
	}
}

func TestDecideSteadyStateAllocs(t *testing.T) {
	m, _, st := warmManager(t, SchemeCoordDVFSCache, Model2)
	got := testing.AllocsPerRun(100, func() {
		if _, ok := m.Decide(0, st[0]); !ok {
			t.Fatal("Decide made no decision")
		}
	})
	if got != 1 {
		t.Fatalf("Decide allocated %.0f times per call, want exactly 1 (the returned settings copy)", got)
	}
}

func TestBuildCurveIntoSteadyStateAllocs(t *testing.T) {
	m, _, st := warmManager(t, SchemeCoordCoreDVFSCache, Model3)
	buf := m.pred.BuildCurveInto(st[0], m.localOptions(0), nil)
	got := testing.AllocsPerRun(100, func() {
		buf = m.pred.BuildCurveInto(st[0], m.localOptions(0), buf)
	})
	if got != 0 {
		t.Fatalf("BuildCurveInto allocated %.0f times per call with a reused buffer, want 0", got)
	}
}

func TestAllocateWaysIntoSteadyStateAllocs(t *testing.T) {
	m, sys, st := warmManager(t, SchemeCoordDVFSCache, Model2)
	if _, ok := m.DecideAll(st); !ok {
		t.Fatal("DecideAll made no decision")
	}
	curves := m.decisionCurves()
	var ws WaysScratch
	if _, ok := AllocateWaysInto(curves, sys.LLC.Assoc, &ws); !ok {
		t.Fatal("warm-up AllocateWaysInto found no allocation")
	}
	got := testing.AllocsPerRun(100, func() {
		if _, ok := AllocateWaysInto(curves, sys.LLC.Assoc, &ws); !ok {
			t.Fatal("AllocateWaysInto found no allocation")
		}
	})
	if got != 0 {
		t.Fatalf("AllocateWaysInto allocated %.0f times per call with warm scratch, want 0", got)
	}
}

func TestSettingsFromCurvesIntoSteadyStateAllocs(t *testing.T) {
	m, sys, st := warmManager(t, SchemeCoordDVFSCache, Model2)
	if _, ok := m.DecideAll(st); !ok {
		t.Fatal("DecideAll made no decision")
	}
	curves := m.decisionCurves()
	alloc, ok := AllocateWays(curves, sys.LLC.Assoc)
	if !ok {
		t.Fatal("AllocateWays found no allocation")
	}
	dst := SettingsFromCurvesInto(nil, curves, alloc)
	got := testing.AllocsPerRun(100, func() {
		dst = SettingsFromCurvesInto(dst, curves, alloc)
	})
	if got != 0 {
		t.Fatalf("SettingsFromCurvesInto allocated %.0f times per call with a reused slice, want 0", got)
	}
}
