package core

import (
	"math"
	"sync"
)

// This file implements the global optimization exactly as the paper draws
// it (Figure 3 of both papers): the per-core energy curves are reduced
// *pairwise* in a binary tree — E12(w1+w2) = min over splits of
// E1(w1)+E2(w2) — until a single curve remains, and the argmin choices are
// unwound from the root. The tree shape is what makes the optimization
// scalable: reductions at the same depth are independent and run
// concurrently here, as they would in parallel hardware or on multiple
// cores of the managed system itself.
//
// AllocateWays (optimize.go) folds the same recurrence left-to-right; the
// two produce allocations of identical total energy (verified by tests and
// by TestTreeMatchesFold), differing at most in tie-breaking.

// treeNode is one vertex of the reduction tree.
type treeNode struct {
	curve []float64 // minimum EPI for each total way count
	// leaf
	core int
	// internal
	left, right *treeNode
	choice      []int // ways granted to the left subtree per total
}

// reducePair combines two nodes.
func reducePair(a, b *treeNode, totalWays int) *treeNode {
	n := &treeNode{
		curve:  make([]float64, totalWays+1),
		choice: make([]int, totalWays+1),
		left:   a,
		right:  b,
	}
	for W := 0; W <= totalWays; W++ {
		n.curve[W] = math.Inf(1)
		n.choice[W] = -1
		for wl := 0; wl <= W; wl++ {
			l := a.curve[wl]
			if math.IsInf(l, 1) {
				continue
			}
			r := b.curve[W-wl]
			if math.IsInf(r, 1) {
				continue
			}
			if sum := l + r; sum < n.curve[W] {
				n.curve[W] = sum
				n.choice[W] = wl
			}
		}
	}
	return n
}

// assign unwinds the argmin choices from the root.
func (n *treeNode) assign(W int, out []int) bool {
	if n.left == nil {
		out[n.core] = W
		return true
	}
	wl := n.choice[W]
	if wl < 0 {
		return false
	}
	return n.left.assign(wl, out) && n.right.assign(W-wl, out)
}

// AllocateWaysTree solves the same problem as AllocateWays with the
// paper's pairwise reduction tree; same-depth reductions run concurrently.
func AllocateWaysTree(curves []*Curve, totalWays int) ([]int, bool) {
	n := len(curves)
	if n == 0 {
		return nil, false
	}
	nodes := make([]*treeNode, n)
	for i, c := range curves {
		leaf := &treeNode{core: i, curve: make([]float64, totalWays+1)}
		for W := 0; W <= totalWays; W++ {
			leaf.curve[W] = c.EPI(W)
		}
		nodes[i] = leaf
	}
	for len(nodes) > 1 {
		next := make([]*treeNode, (len(nodes)+1)/2)
		var wg sync.WaitGroup
		for i := 0; i+1 < len(nodes); i += 2 {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				next[i/2] = reducePair(nodes[i], nodes[i+1], totalWays)
			}(i)
		}
		if len(nodes)%2 == 1 {
			next[len(next)-1] = nodes[len(nodes)-1]
		}
		wg.Wait()
		nodes = next
	}
	root := nodes[0]
	if math.IsInf(root.curve[totalWays], 1) {
		return nil, false
	}
	alloc := make([]int, n)
	if !root.assign(totalWays, alloc) {
		return nil, false
	}
	return alloc, true
}
