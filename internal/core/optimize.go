package core

import (
	"math"

	"qosrma/internal/arch"
	"qosrma/internal/power"
)

// Option is the best (size, frequency) found for one way allocation during
// local optimization, with its predicted energy per instruction.
type Option struct {
	Size     arch.CoreSize
	FreqIdx  int
	EPI      float64 // +Inf when no setting meets the QoS target
	Feasible bool
}

// Curve is one core's pruned energy curve: for every possible way count,
// the cheapest setting that meets the core's QoS target (Figure 3 of
// Paper I / Figure 3 of Paper II).
type Curve struct {
	Core    int
	Options []Option // indexed by ways, 0..assoc
}

// EPI returns the curve value at w (+Inf outside the feasible range).
func (c *Curve) EPI(w int) float64 {
	if w < 0 || w >= len(c.Options) {
		return math.Inf(1)
	}
	return c.Options[w].EPI
}

// LocalOptions configures the per-core configuration-space pruning.
type LocalOptions struct {
	// Sizes is the candidate core sizes (just the baseline size for the
	// Paper I scheme, all sizes for Paper II).
	Sizes []arch.CoreSize
	// Freqs is the candidate frequency indices (all by default; pinned to
	// the baseline frequency for the partitioning-only scheme).
	Freqs []int
	// MinEnergyFreq: when false, each way count uses the *minimum* feasible
	// frequency (Paper I's fmin(w) rule); when true, all feasible
	// frequencies are evaluated and the cheapest is kept (Paper II's
	// "minimum energy meeting QoS" rule).
	MinEnergyFreq bool
	// Slack is the QoS relaxation for this core (0 = baseline performance).
	Slack float64
	// MaxWays bounds the per-core allocation (assoc - (numCores-1), since
	// every other core needs at least one way).
	MaxWays int
}

// BuildCurve performs the local optimization: for every way count w it
// searches the (size, frequency) plane for the cheapest setting whose
// predicted IPS meets the QoS target, producing the core's energy curve.
func (p *Predictor) BuildCurve(st *IntervalStats, opt LocalOptions) *Curve {
	return p.BuildCurveInto(st, opt, nil)
}

// BuildCurveInto is BuildCurve writing into a reusable curve buffer (nil
// allocates a fresh one); the resource manager reuses per-core buffers
// across intervals, keeping the invocation path allocation-free.
//
// The candidate loop is restructured so that everything invariant in the
// triple (size × ways × frequency) search — the QoS target, the per-size
// dispatch and branch cycle components, the per-(size, ways) leading-miss
// and miss predictions — is hoisted and computed exactly once, with the
// arithmetic kept term-for-term identical to Predictor.IPS/EPI so the curve
// is bit-equal to the naive search.
//
//qosrma:noalloc
func (p *Predictor) BuildCurveInto(st *IntervalStats, opt LocalOptions, buf *Curve) *Curve {
	assoc := p.Sys.LLC.Assoc
	if opt.MaxWays <= 0 || opt.MaxWays > assoc {
		opt.MaxWays = assoc
	}
	freqs := opt.Freqs
	if freqs == nil {
		// Cold-path default (sched, tests): the manager precomputes Freqs
		// in its per-core LocalOptions, so Decide never allocates here.
		//qosrma:allow(noalloc) one-time default for callers without precomputed Freqs
		freqs = make([]int, len(p.Sys.DVFS))
		for i := range freqs {
			freqs[i] = i
		}
	}
	sizes := opt.Sizes
	if sizes == nil {
		sizes = []arch.CoreSize{p.Sys.BaselineSize}
	}
	target := p.QoSTargetIPS(st, opt.Slack)

	curve := buf
	if curve == nil {
		curve = &Curve{}
	}
	curve.Core = st.Core
	if cap(curve.Options) >= assoc+1 {
		curve.Options = curve.Options[:assoc+1]
	} else {
		curve.Options = make([]Option, assoc+1)
	}

	// Per-size invariants of the cycle model (Predictor.Cycles): the
	// dispatch-bound base component and the branch penalty.
	var baseCyc, branchCyc [arch.NumCoreSizes]float64
	for _, size := range sizes {
		cp := p.Sys.Cores[size]
		baseCyc[size] = st.Instr / p.effIPC(st, cp)
		branchCyc[size] = st.BranchMisses * float64(cp.BranchPenal)
	}

	latNs := p.Sys.Mem.LatencyNs
	for w := 0; w <= assoc; w++ {
		curve.Options[w] = Option{EPI: math.Inf(1)}
		if w < 1 || w > opt.MaxWays {
			continue // every core needs at least one way
		}
		best := &curve.Options[w]
		misses := p.predictedMisses(st, w)
		for _, size := range sizes {
			leadLat := p.predictedLeading(st, size, w) * latNs
			cp := p.Sys.Cores[size]
			for _, fi := range freqs {
				op := p.Sys.DVFS[fi]
				f := op.FreqGHz
				cycles := baseCyc[size] + branchCyc[size] + leadLat*f
				if cycles <= 0 || st.Instr/(cycles/(f*1e9)) < target {
					continue
				}
				epi := power.EPI(p.Power, power.Activity{
					Instr:       st.Instr,
					Seconds:     cycles / (f * 1e9),
					LLCAccesses: st.LLCAccesses,
					DRAMAcc:     misses,
					Core:        cp,
					Op:          op,
				})
				if epi < best.EPI {
					*best = Option{Size: size, FreqIdx: fi, EPI: epi, Feasible: true}
				}
				if !opt.MinEnergyFreq {
					// fmin(w) rule: stop at the first (lowest) feasible
					// frequency for this size.
					break
				}
			}
		}
	}
	return curve
}

// WaysScratch holds AllocateWaysInto's reusable reduction state: the two
// DP rows, the flattened per-core choice matrix, and the unwound
// allocation. One instance per Manager keeps the global reduction
// allocation-free after the first decision (the decision service pushes
// millions of DecideAll calls through this path).
type WaysScratch struct {
	combined []float64
	next     []float64
	choices  []int // n rows of totalWays+1 entries, flattened
	alloc    []int
}

// AllocateWays reduces the per-core energy curves to the optimum partition
// of totalWays across cores: it minimizes the sum of curve values subject
// to sum(w_j) == totalWays. Curves are reduced pairwise exactly as in the
// paper's global optimization; the implementation folds left-to-right,
// recording the split choice at every reduction so the final allocation can
// be unwound. Returns nil and false when no feasible allocation exists.
//
// This convenience form allocates private scratch per call; hot paths
// hold a WaysScratch and use AllocateWaysInto.
func AllocateWays(curves []*Curve, totalWays int) ([]int, bool) {
	var ws WaysScratch
	return AllocateWaysInto(curves, totalWays, &ws)
}

// AllocateWaysInto is AllocateWays computing in ws's reusable buffers.
// The returned allocation aliases ws and is valid until the next call
// with the same scratch.
//
//qosrma:noalloc
func AllocateWaysInto(curves []*Curve, totalWays int, ws *WaysScratch) ([]int, bool) {
	n := len(curves)
	if n == 0 {
		return nil, false
	}
	rowLen := totalWays + 1
	if cap(ws.combined) < rowLen {
		ws.combined = make([]float64, rowLen)
		ws.next = make([]float64, rowLen)
	}
	if cap(ws.choices) < n*rowLen {
		ws.choices = make([]int, n*rowLen)
	}
	if cap(ws.alloc) < n {
		ws.alloc = make([]int, n)
	}
	// combined[W]: minimum total EPI of cores 0..i using exactly W ways.
	// choice[W]: ways given to core i in that optimum.
	combined := ws.combined[:rowLen]
	next := ws.next[:rowLen]
	choices := ws.choices[:n*rowLen]
	alloc := ws.alloc[:n]
	for W := range combined {
		combined[W] = curves[0].EPI(W)
	}
	for i := 1; i < n; i++ {
		choice := choices[i*rowLen : (i+1)*rowLen]
		for W := 0; W <= totalWays; W++ {
			next[W] = math.Inf(1)
			choice[W] = -1
			for wi := 0; wi <= W; wi++ {
				e := curves[i].EPI(wi)
				if math.IsInf(e, 1) {
					continue
				}
				prev := combined[W-wi]
				if math.IsInf(prev, 1) {
					continue
				}
				if total := prev + e; total < next[W] {
					next[W] = total
					choice[W] = wi
				}
			}
		}
		combined, next = next, combined
	}
	if math.IsInf(combined[totalWays], 1) {
		return nil, false
	}
	// Unwind.
	W := totalWays
	for i := n - 1; i >= 1; i-- {
		wi := choices[i*rowLen+W]
		alloc[i] = wi
		W -= wi
	}
	alloc[0] = W
	return alloc, true
}

// IdleCurve returns a zero-cost energy curve standing in for an unoccupied
// core: every way count, including zero, is feasible at zero energy, so the
// global reduction hands idle cores exactly the surplus ways the occupied
// cores do not want. Size and frequency of every option are the parking
// setting's (nothing executes there, they are cosmetic).
func IdleCurve(assoc int, parked arch.Setting) *Curve {
	c := &Curve{Core: -1, Options: make([]Option, assoc+1)}
	for w := range c.Options {
		c.Options[w] = Option{Size: parked.Size, FreqIdx: parked.FreqIdx, Feasible: true}
	}
	return c
}

// SettingsFromCurves converts a way allocation back into complete per-core
// settings using each curve's per-way optimum.
func SettingsFromCurves(curves []*Curve, alloc []int) []arch.Setting {
	return SettingsFromCurvesInto(nil, curves, alloc)
}

// SettingsFromCurvesInto is SettingsFromCurves writing into dst's backing
// array when it is large enough (the Manager reuses its settings slice
// across decisions).
//
//qosrma:noalloc
func SettingsFromCurvesInto(dst []arch.Setting, curves []*Curve, alloc []int) []arch.Setting {
	if cap(dst) < len(curves) {
		dst = make([]arch.Setting, len(curves))
	}
	dst = dst[:len(curves)]
	for i, c := range curves {
		o := c.Options[alloc[i]]
		dst[i] = arch.Setting{Size: o.Size, FreqIdx: o.FreqIdx, Ways: alloc[i]}
	}
	return dst
}

// TotalEPI evaluates an allocation against the curves (for tests and
// diagnostics).
func TotalEPI(curves []*Curve, alloc []int) float64 {
	var sum float64
	for i, c := range curves {
		sum += c.EPI(alloc[i])
	}
	return sum
}
