package core

import (
	"math"

	"qosrma/internal/arch"
	"qosrma/internal/power"
)

// ModelKind selects the analytical performance model (Paper II §V).
type ModelKind int

const (
	// Model1 charges every predicted cache miss the full memory latency
	// (total memory stall = misses x average access latency).
	Model1 ModelKind = iota
	// Model2 assumes the measured MLP stays constant across allocations
	// (the Paper I model).
	Model2
	// Model3 uses the MLP-ATD leading-miss profile per (core size, ways)
	// (the Paper II model with hardware support).
	Model3
)

// String names the model like the paper does.
func (k ModelKind) String() string {
	switch k {
	case Model1:
		return "Model1"
	case Model2:
		return "Model2"
	case Model3:
		return "Model3"
	default:
		return "Model?"
	}
}

// Predictor evaluates the analytical performance and energy models for
// candidate resource settings given one interval's statistics.
type Predictor struct {
	Sys   *arch.SystemConfig
	Power power.Params
	Kind  ModelKind
	// Feedback, when non-nil, supplies phase-history MLP estimates that
	// override the constant-MLP assumption for visited (phase, ways)
	// points — the thesis' proposed software alternative to the MLP-ATD
	// hardware (see FeedbackTable).
	Feedback *FeedbackTable
}

// saturationFraction: if the measured effective IPC is above this fraction
// of the current width, the program is considered width-bound and a wider
// core is assumed to help fully (a deliberate heuristic; part of the
// realistic model error).
const saturationFraction = 0.92

// saturatedHeadroom is the assumed ILP headroom factor for width-saturated
// programs when extrapolating to a wider core.
const saturatedHeadroom = 1.3

// effIPC estimates the dispatch-bound IPC on a target core size.
func (p *Predictor) effIPC(st *IntervalStats, target arch.CoreParams) float64 {
	if st.IlpIPC > 0 {
		// Oracle statistics carry the true dependency-limited IPC.
		return math.Min(st.IlpIPC, float64(target.Width))
	}
	cur := p.Sys.Cores[st.Setting.Size]
	fcur := p.Sys.DVFS[st.Setting.FreqIdx].FreqGHz
	memStall := st.LeadingMisses * p.Sys.Mem.LatencyNs * fcur
	branch := st.BranchMisses * float64(cur.BranchPenal)
	base := st.Cycles - memStall - branch
	floor := st.Instr / float64(cur.Width)
	if base < floor {
		base = floor
	}
	effCur := st.Instr / base
	ilp := effCur
	if effCur >= saturationFraction*float64(cur.Width) {
		// Width-saturated: the true ILP is unobservable from counters.
		// Assume modest headroom beyond the current width rather than
		// unbounded ILP; over-optimism here turns directly into QoS
		// violations when upsizing.
		ilp = effCur * saturatedHeadroom
	}
	return math.Min(ilp, float64(target.Width))
}

// predictedLeading returns the leading-miss count the model expects for the
// given target size and way allocation.
func (p *Predictor) predictedLeading(st *IntervalStats, size arch.CoreSize, ways int) float64 {
	misses := p.predictedMisses(st, ways)
	switch p.Kind {
	case Model1:
		return misses
	case Model3:
		if st.ATDLeading != nil {
			return clampIndexed(st.ATDLeading[size], ways)
		}
		fallthrough
	default: // Model2 or Model3 without the hardware extension
		if p.Feedback != nil {
			if mlp, ok := p.Feedback.MLPFor(st, ways); ok && mlp >= 1 {
				return misses / mlp
			}
		}
		return misses / st.MLP()
	}
}

// predictedMisses returns the expected miss count at a way allocation.
func (p *Predictor) predictedMisses(st *IntervalStats, ways int) float64 {
	return clampIndexed(st.ATDMisses, ways)
}

func clampIndexed(xs []float64, i int) float64 {
	if len(xs) == 0 {
		return 0
	}
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// Cycles predicts the cycle count of the next interval at setting s.
func (p *Predictor) Cycles(st *IntervalStats, s arch.Setting) float64 {
	target := p.Sys.Cores[s.Size]
	f := p.Sys.DVFS[s.FreqIdx].FreqGHz
	base := st.Instr / p.effIPC(st, target)
	branch := st.BranchMisses * float64(target.BranchPenal)
	mem := p.predictedLeading(st, s.Size, s.Ways) * p.Sys.Mem.LatencyNs * f
	return base + branch + mem
}

// IPS predicts instructions per second at setting s.
func (p *Predictor) IPS(st *IntervalStats, s arch.Setting) float64 {
	c := p.Cycles(st, s)
	if c <= 0 {
		return 0
	}
	f := p.Sys.DVFS[s.FreqIdx].FreqGHz
	return st.Instr / (c / (f * 1e9))
}

// EPI predicts the average energy per instruction at setting s, in joules.
func (p *Predictor) EPI(st *IntervalStats, s arch.Setting) float64 {
	f := p.Sys.DVFS[s.FreqIdx].FreqGHz
	secs := p.Cycles(st, s) / (f * 1e9)
	act := power.Activity{
		Instr:       st.Instr,
		Seconds:     secs,
		LLCAccesses: st.LLCAccesses,
		DRAMAcc:     p.predictedMisses(st, s.Ways),
		Core:        p.Sys.Cores[s.Size],
		Op:          p.Sys.DVFS[s.FreqIdx],
	}
	return power.EPI(p.Power, act)
}

// QoSTargetIPS returns the minimum acceptable IPS for the next interval:
// the model's own prediction of baseline performance, relaxed by slack
// (slack 0.10 tolerates 10% longer execution).
func (p *Predictor) QoSTargetIPS(st *IntervalStats, slack float64) float64 {
	base := p.IPS(st, p.Sys.BaselineSetting())
	if slack <= 0 {
		return base
	}
	return base / (1 + slack)
}
