// Package core implements the paper's primary contribution: QoS-driven
// coordinated management of per-core DVFS, LLC partitioning and (Paper II)
// core micro-architecture size.
//
// The resource manager is invoked on a core at every interval boundary
// (100M retired instructions). From the interval's hardware-counter
// statistics and the auxiliary-tag-directory profiles it:
//
//  1. predicts performance and energy for the upcoming interval as a
//     function of the core's resource setting (analytical models,
//     model.go),
//  2. prunes the per-core configuration space with the QoS target —
//     for every way count w it finds the cheapest (size, frequency)
//     meeting the target, yielding an energy curve E(w) (optimize.go),
//  3. reduces the energy curves of all cores to the global optimum way
//     allocation (optimize.go), and
//  4. emits the new per-core settings (rma.go).
package core

import "qosrma/internal/arch"

// IntervalStats is everything the resource manager observes about one
// core's most recently completed interval: hardware performance counters
// plus the ATD and MLP-ATD profiles.
type IntervalStats struct {
	Core int // core index

	// Setting is the resource allocation the interval executed under.
	Setting arch.Setting

	Instr  float64 // retired instructions (the interval length)
	Cycles float64 // elapsed core cycles

	LLCAccesses   float64 // LLC accesses in the interval
	BranchMisses  float64 // branch mispredictions in the interval
	TotalMisses   float64 // LLC misses at the current allocation
	LeadingMisses float64 // non-overlapped misses (leading-loads counter)

	// ATDMisses[w] is the ATD miss profile: predicted misses for every
	// possible way allocation (index 0..assoc).
	ATDMisses []float64

	// ATDLeading[c][w] is the MLP-ATD leading-miss profile per core size
	// (Paper II hardware). Nil when the hardware extension is absent; the
	// models then fall back to the constant-MLP assumption.
	ATDLeading [][]float64

	// IlpIPC, when positive, is the phase's true dependency-limited IPC.
	// It is set only on oracle ("perfect model") statistics; realistic
	// statistics leave it zero and the predictor infers the compute
	// component from Cycles.
	IlpIPC float64
}

// Clone returns a deep copy of the statistics.
func (s *IntervalStats) Clone() *IntervalStats {
	c := *s
	c.ATDMisses = append([]float64(nil), s.ATDMisses...)
	if s.ATDLeading != nil {
		c.ATDLeading = make([][]float64, len(s.ATDLeading))
		for i := range s.ATDLeading {
			c.ATDLeading[i] = append([]float64(nil), s.ATDLeading[i]...)
		}
	}
	return &c
}

// MLP returns the measured memory-level parallelism of the interval.
func (s *IntervalStats) MLP() float64 {
	if s.LeadingMisses <= 0 {
		return 1
	}
	m := s.TotalMisses / s.LeadingMisses
	if m < 1 {
		return 1
	}
	return m
}
