// Benchmarks: one per table/figure of the paper's evaluation (see the
// per-experiment index in DESIGN.md) plus micro-benchmarks of the hot
// kernels. Experiment benches report the headline metric of the artifact
// they regenerate (avgSavings%/maxSavings% etc.) via b.ReportMetric, so
// `go test -bench=.` reproduces the evaluation end to end.
package qosrma

import (
	"math"
	"runtime"
	"sync"
	"testing"

	"qosrma/internal/arch"
	"qosrma/internal/cache"
	"qosrma/internal/core"
	"qosrma/internal/equilibrium"
	"qosrma/internal/experiments"
	"qosrma/internal/power"
	"qosrma/internal/rmasim"
	"qosrma/internal/sched"
	"qosrma/internal/simdb"
	"qosrma/internal/simpoint"
	"qosrma/internal/stats"
	"qosrma/internal/trace"
	"qosrma/internal/wire"
)

func benchEnv(b *testing.B) *experiments.Env {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping multi-second environment build in -short mode")
	}
	env, err := experiments.SharedEnv()
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// paperISchemes are the schemes compared in Paper I's headline figures.
func paperISchemes() []core.Scheme {
	return []core.Scheme{
		core.SchemeDVFSOnly,
		core.SchemePartitionOnly,
		core.SchemeCoordDVFSCache,
	}
}

// BenchmarkP1EnergySavings4Core regenerates P1.F4: per-workload energy
// savings of DVFS-only / RM1 / RM2 on the twenty 4-core mixes (paper: RM2
// up to 18%, average 6%; RM1 average 1%).
func BenchmarkP1EnergySavings4Core(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		exp, err := experiments.RunEnergySavings(env.DB4, env.Mixes4, paperISchemes(), core.Model2, false)
		if err != nil {
			b.Fatal(err)
		}
		rm2 := exp.Schemes[2]
		b.ReportMetric(rm2.Avg()*100, "avgSavings%")
		b.ReportMetric(rm2.Max()*100, "maxSavings%")
	}
}

// BenchmarkP1EnergySavings8Core regenerates P1.F8 (paper: RM2 up to 14%,
// average 6%; RM1 average 2%).
func BenchmarkP1EnergySavings8Core(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		exp, err := experiments.RunEnergySavings(env.DB8, env.Mixes8, paperISchemes(), core.Model2, false)
		if err != nil {
			b.Fatal(err)
		}
		rm2 := exp.Schemes[2]
		b.ReportMetric(rm2.Avg()*100, "avgSavings%")
		b.ReportMetric(rm2.Max()*100, "maxSavings%")
	}
}

// BenchmarkP1PerfectModels regenerates P1.PM: RM2 with oracle statistics
// (paper: average 8% savings, close to the realistic result).
func BenchmarkP1PerfectModels(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		cmp, err := experiments.RunPerfectVsRealistic(env.DB4, env.Mixes4,
			core.SchemeCoordDVFSCache, core.Model2)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(cmp.Perfect.Avg()*100, "perfectAvg%")
		b.ReportMetric(cmp.Realistic.Avg()*100, "realisticAvg%")
	}
}

// BenchmarkP1QoSViolations regenerates P1.QV: the per-application QoS
// violation census under realistic models (paper: 13/80 apps, average 3%,
// max 9%).
func BenchmarkP1QoSViolations(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		exp, err := experiments.RunEnergySavings(env.DB4, env.Mixes4,
			[]core.Scheme{core.SchemeCoordDVFSCache}, core.Model2, false)
		if err != nil {
			b.Fatal(err)
		}
		q := experiments.QoSOf(exp.Schemes[0].Results)
		b.ReportMetric(float64(q.Violations), "violations")
		b.ReportMetric(q.AvgPct, "avgViol%")
		b.ReportMetric(q.MaxPct, "maxViol%")
	}
}

// BenchmarkP1Relaxation regenerates P1.RX: savings versus QoS slack with
// perfect models (paper: up to 29% and on average 17% at ~40% slack).
func BenchmarkP1Relaxation(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunRelaxationSweep(env.DB4, env.Mixes4,
			core.SchemeCoordDVFSCache, []float64{0, 0.2, 0.4, 0.6, 0.8})
		if err != nil {
			b.Fatal(err)
		}
		at40 := points[2]
		b.ReportMetric(at40.Avg*100, "avg@40%")
		b.ReportMetric(at40.Max*100, "max@40%")
	}
}

// BenchmarkP1SubsetRelaxation regenerates P1.SUB: slack granted only to a
// subset of the workload.
func BenchmarkP1SubsetRelaxation(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSubsetRelaxation(env.DB4, env.Mixes4[4], 0.4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[len(rows)-1].Savings*100, "allRelaxed%")
	}
}

// BenchmarkP1BaselineVF regenerates P1.VF: sensitivity of the savings to
// the baseline VF choice.
func BenchmarkP1BaselineVF(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.RunBaselineVFSensitivity(env.DB4, env.Mixes4,
			[]float64{1.6, 2.0, 2.4})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Avg*100, "avg@1.6GHz%")
		b.ReportMetric(points[2].Avg*100, "avg@2.4GHz%")
	}
}

// BenchmarkP1RMAOverhead regenerates P1.OV: the steady-state cost of one
// RM2 invocation on four cores (paper: <40K instructions, ~0.04% of a
// 100M-instruction interval).
func BenchmarkP1RMAOverhead(b *testing.B) {
	env := benchEnv(b)
	probe, err := experiments.NewOverheadProbe(env.DB4, core.SchemeCoordDVFSCache, core.Model2)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe.Invoke()
	}
}

// BenchmarkP2Scenarios regenerates P2.SC: the 16-category-mix systematic
// analysis (paper: RM3 substantially improves savings in 12 of 16 mixes).
func BenchmarkP2Scenarios(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		an, err := experiments.RunScenarioAnalysis(env.DB4, env.MixesII, core.Model3)
		if err != nil {
			b.Fatal(err)
		}
		improved := 0
		for _, o := range an.Outcomes {
			if o.RM3 >= 0.025 {
				improved++
			}
		}
		b.ReportMetric(float64(improved), "rm3EffectiveMixes")
	}
}

// BenchmarkP2RM123 regenerates P2.S1-S4: RM2 versus RM3 per scenario
// (paper: Scenario 1 RM3 average 14%, max 17.6%, up to 60% above RM2).
func BenchmarkP2RM123(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		an, err := experiments.RunScenarioAnalysis(env.DB4, env.MixesII, core.Model3)
		if err != nil {
			b.Fatal(err)
		}
		st := an.Stats()
		b.ReportMetric(st[0].RM3Avg*100, "s1RM3avg%")
		b.ReportMetric(st[0].RM2Avg*100, "s1RM2avg%")
	}
}

// BenchmarkP2Models regenerates P2.MD: Model 1/2/3 under RM3 (paper:
// Model 3 violation probability 3%, 32%/46% below Models 2/1).
func BenchmarkP2Models(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunModelComparison(env.DB4, env.Mixes4,
			core.SchemeCoordCoreDVFSCache)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[2].ViolationProb*100, "m3ViolProb%")
		b.ReportMetric(rows[1].ViolationProb*100, "m2ViolProb%")
		b.ReportMetric(rows[0].ViolationProb*100, "m1ViolProb%")
	}
}

// BenchmarkP2RM3Overhead2Core, 4Core and 8Core regenerate P2.OV: RM3
// invocation cost versus core count (paper: 18K/40K/67K instructions for
// 2/4/8 cores).
func BenchmarkP2RM3Overhead2Core(b *testing.B) {
	db2 := twoCoreDB(b)
	probe, err := experiments.NewOverheadProbe(db2, core.SchemeCoordCoreDVFSCache, core.Model3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe.Invoke()
	}
}

var (
	db2Once sync.Once
	db2Inst *simdb.DB
	db2Err  error
)

// twoCoreDB lazily builds a 2-core database for the overhead scaling bench.
func twoCoreDB(b *testing.B) *simdb.DB {
	b.Helper()
	if testing.Short() {
		b.Skip("skipping multi-second database build in -short mode")
	}
	db2Once.Do(func() {
		db2Inst, db2Err = simdb.Build(arch.DefaultSystemConfig(2), trace.Suite(),
			simdb.DefaultBuildOptions())
	})
	if db2Err != nil {
		b.Fatal(db2Err)
	}
	return db2Inst
}

// BenchmarkP2RM3Overhead4Core measures RM3 Decide on four cores.
func BenchmarkP2RM3Overhead4Core(b *testing.B) {
	env := benchEnv(b)
	probe, err := experiments.NewOverheadProbe(env.DB4, core.SchemeCoordCoreDVFSCache, core.Model3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe.Invoke()
	}
}

// BenchmarkP2RM3Overhead8Core measures RM3 Decide on eight cores.
func BenchmarkP2RM3Overhead8Core(b *testing.B) {
	env := benchEnv(b)
	probe, err := experiments.NewOverheadProbe(env.DB8, core.SchemeCoordCoreDVFSCache, core.Model3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe.Invoke()
	}
}

// ---- extension and ablation benchmarks (see EXPERIMENTS.md) ----

// BenchmarkExtFeedback regenerates EXT.FB: the thesis' phase-history
// feedback proposal versus the paper's Model 2 and the MLP-ATD hardware.
func BenchmarkExtFeedback(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunFeedbackAblation(env.DB4, env.Mixes4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].IntervalViolProb*100, "model2ViolProb%")
		b.ReportMetric(rows[1].IntervalViolProb*100, "feedbackViolProb%")
		b.ReportMetric(rows[2].IntervalViolProb*100, "mlpATDViolProb%")
	}
}

// BenchmarkExtScheduler regenerates EXT.SCHED: characteristics-guided
// collocation versus adversarial clustering.
func BenchmarkExtScheduler(b *testing.B) {
	env := benchEnv(b)
	apps := []string{"mcf", "omnetpp", "perlbench", "xalancbmk",
		"gamess", "hmmer", "namd", "povray"}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSchedulerGuidance(env.DB4, apps)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Measured*100, "adversarial%")
		b.ReportMetric(rows[1].Measured*100, "guided%")
	}
}

// BenchmarkAblationUncoordinated regenerates AB.UNC: the independent
// UCP+DVFS design versus the coordinated manager.
func BenchmarkAblationUncoordinated(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunUncoordinatedAblation(env.DB4, env.Mixes4)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgSavings*100, "uncoordAvg%")
		b.ReportMetric(rows[1].AvgSavings*100, "coordAvg%")
	}
}

// BenchmarkAblationSwitchCosts regenerates AB.SW: reconfiguration-overhead
// sensitivity.
func BenchmarkAblationSwitchCosts(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunSwitchCostAblation(env.DB4, env.Mixes4[:8])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].AvgSavings*100, "x0.01%")
		b.ReportMetric(rows[2].AvgSavings*100, "x50%")
	}
}

// BenchmarkAblationBandwidth regenerates AB.BW: per-core bandwidth pressure.
func BenchmarkAblationBandwidth(b *testing.B) {
	env := benchEnv(b)
	for i := 0; i < b.N; i++ {
		rows, err := experiments.RunBandwidthAblation(env.DB4, env.Mixes4[:8])
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rows[2].QoS.Violations), "viol@3GBps")
	}
}

// ---- micro-benchmarks of the substrate kernels ----

// BenchmarkATDAccess measures the auxiliary-tag-directory access path.
func BenchmarkATDAccess(b *testing.B) {
	atd := cache.NewATD(1024, 16, 1)
	rng := stats.NewRNG(1)
	lines := make([]uint32, 4096)
	for i := range lines {
		lines[i] = uint32(rng.Intn(200_000))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		atd.Access(lines[i&4095])
	}
}

// BenchmarkStackDistances measures the full-stream distance computation
// used by the detailed simulator.
func BenchmarkStackDistances(b *testing.B) {
	bh := trace.Behavior{
		Name: "bench", IlpIPC: 2.5, APKI: 15,
		HotLines: 2000, WarmLines: 5000, PHot: 0.45, PWarm: 0.35,
		PBurst: 0.3, BurstLen: 6, BurstGap: 10, PDep: 0.2,
	}
	s := bh.Generate(7, trace.SampleParams{Accesses: 20000})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.Distances(1024, 16, nil, s.Measured)
	}
}

// BenchmarkMLPAnalysis measures the MLP-ATD leading-miss detection for a
// single (core, ways) point — the unit of the pre-fusion per-point loop.
func BenchmarkMLPAnalysis(b *testing.B) {
	bh := trace.Behavior{
		Name: "bench", IlpIPC: 3, APKI: 20,
		HotLines: 500, PHot: 0.2,
		PBurst: 0.4, BurstLen: 10, BurstGap: 6, PDep: 0.1,
	}
	s := bh.Generate(9, trace.SampleParams{Accesses: 20000})
	dists := cache.Distances(1024, 16, nil, s.Measured)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.AnalyzeMLP(s.Measured, dists, 4, 128, 8)
	}
}

// BenchmarkLeadingMissSurface measures the fused one-pass profiler
// producing the complete Leading[c][w] surface (3 core sizes × 17 way
// allocations) plus both miss histograms in one call — the work the naive
// pipeline needed ~51 AnalyzeMLP passes and two ATD passes for.
func BenchmarkLeadingMissSurface(b *testing.B) {
	bh := trace.Behavior{
		Name: "bench", IlpIPC: 3, APKI: 20,
		HotLines: 500, PHot: 0.2,
		PBurst: 0.4, BurstLen: 10, BurstGap: 6, PDep: 0.1,
	}
	s := bh.Generate(9, trace.SampleParams{Accesses: 20000})
	cores := []cache.CoreMLPParams{
		{ROB: 64, MSHRs: 8}, {ROB: 128, MSHRs: 8}, {ROB: 256, MSHRs: 16},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cache.ProfileStream(1024, 16, 32, nil, s.Measured, cores)
	}
}

// BenchmarkSimulatePhase measures the uncached detailed simulation of one
// phase — stream generation plus the fused profiling pass plus record
// derivation, the per-phase unit of database construction.
func BenchmarkSimulatePhase(b *testing.B) {
	sys := arch.DefaultSystemConfig(4)
	bench := trace.ByName("gcc")
	an := simpoint.Analyze(bench, simpoint.DefaultOptions())
	sp := trace.DefaultSampleParams()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simdb.SimulatePhase(sys, bench, an, 0, sp)
	}
}

// BenchmarkCurveReduction measures the global optimization (pairwise
// energy-curve reduction) for an 8-core, 32-way system.
func BenchmarkCurveReduction(b *testing.B) {
	rng := stats.NewRNG(3)
	curves := make([]*core.Curve, 8)
	for i := range curves {
		c := &core.Curve{Options: make([]core.Option, 33)}
		for w := range c.Options {
			if w == 0 || w > 25 {
				c.Options[w] = core.Option{EPI: math.Inf(1)}
				continue
			}
			c.Options[w] = core.Option{EPI: rng.Float64() + 0.1, Feasible: true}
		}
		curves[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.AllocateWays(curves, 32); !ok {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkTreeReduction16Core measures the paper's pairwise reduction
// tree at a core count beyond the evaluated systems (scalability claim).
func BenchmarkTreeReduction16Core(b *testing.B) {
	rng := stats.NewRNG(5)
	const assoc = 64
	curves := make([]*core.Curve, 16)
	for i := range curves {
		c := &core.Curve{Options: make([]core.Option, assoc+1)}
		for w := range c.Options {
			if w == 0 || w > assoc-15 {
				c.Options[w] = core.Option{EPI: math.Inf(1)}
				continue
			}
			c.Options[w] = core.Option{EPI: rng.Float64() + 0.1, Feasible: true}
		}
		curves[i] = c
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := core.AllocateWaysTree(curves, assoc); !ok {
			b.Fatal("infeasible")
		}
	}
}

// BenchmarkSimDBLookup measures one ground-truth performance evaluation on
// the hot path the RMA simulator uses: interned benchmark ID + lattice
// index into the compiled tables.
func BenchmarkSimDBLookup(b *testing.B) {
	env := benchEnv(b)
	db := env.DB4
	id, ok := db.BenchIDOf("mcf")
	if !ok {
		b.Fatal("mcf missing")
	}
	idx := db.Lattice.Index(db.Sys.BaselineSetting())
	var acc float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		acc += db.PerfAt(id, 0, idx).TPI
	}
	if acc <= 0 {
		b.Fatal("degenerate lookup")
	}
}

// BenchmarkSimDBLookupString measures the same lookup through the
// string-keyed compatibility wrapper (name resolution + struct copy).
func BenchmarkSimDBLookupString(b *testing.B) {
	env := benchEnv(b)
	s := env.DB4.Sys.BaselineSetting()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.DB4.Perf("mcf", 0, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimDBReferenceEval measures the retained on-the-fly model
// evaluation the tables are compiled from (the pre-lattice cost of Perf).
func BenchmarkSimDBReferenceEval(b *testing.B) {
	env := benchEnv(b)
	s := env.DB4.Sys.BaselineSetting()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.DB4.ReferencePerf("mcf", 0, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMASimRun measures a complete co-phase workload simulation.
func BenchmarkRMASimRun(b *testing.B) {
	env := benchEnv(b)
	mix := env.Mixes4[7]
	for i := 0; i < b.N; i++ {
		_, err := experiments.Execute(experiments.RunSpec{
			DB: env.DB4, Mix: mix, Scheme: core.SchemeCoordDVFSCache,
			Model: core.Model2, BaselineFreqIdx: -1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRMASimStep measures one event of the resumable stepper: the
// completion-horizon search, exact advance, QoS audit and RMA invocation
// of a running 4-core co-phase simulation (the open-system hot path).
func BenchmarkRMASimStep(b *testing.B) {
	env := benchEnv(b)
	mix := env.Mixes4[7]
	newSim := func() *rmasim.Sim {
		mgr := core.NewManager(core.Config{
			Sys:    env.DB4.Sys,
			Power:  power.DefaultParams(env.DB4.Sys),
			Scheme: core.SchemeCoordDVFSCache,
			Model:  core.Model2,
		})
		sim, err := rmasim.New(env.DB4, mix.Apps, mgr, rmasim.DefaultOptions())
		if err != nil {
			b.Fatal(err)
		}
		return sim
	}
	sim := newSim()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if sim.InFirstRound() == 0 {
			b.StopTimer()
			sim = newSim()
			b.StartTimer()
		}
		if _, err := sim.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkClusterRun measures a small open-system fleet scenario end to
// end: seeded arrivals, scored placement, parallel machine advance,
// departures (2 machines, 8 jobs).
func BenchmarkClusterRun(b *testing.B) {
	env := benchEnv(b)
	opt := experiments.DefaultClusterOptions()
	opt.Machines = 2
	opt.Jobs = 8
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunCluster(env.DB4, opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.EnergySavings*100, "fleetSavings%")
		}
	}
}

// equilibriumPlayers is the 8-player fixture for the equilibrium
// benchmarks: two machine-loads of mixed sensitivities.
var equilibriumPlayers = []string{
	"mcf", "omnetpp", "perlbench", "xalancbmk",
	"gamess", "hmmer", "namd", "povray",
}

// BenchmarkEquilibrium measures one certified pure-Nash solve of the
// placement game on warm scorer caches: 8 players on two 4-core machines,
// best-response dynamics over four seeded starts plus the independent
// no-improvement certificate (the per-arrival cost of the cluster
// engine's equilibrium placement policy).
func BenchmarkEquilibrium(b *testing.B) {
	env := benchEnv(b)
	sc := sched.NewScorer(env.DB4)
	cfg := equilibrium.Config{Machines: 2, Capacity: 4, Seed: 1}
	if _, err := equilibrium.Solve(sc, equilibriumPlayers, cfg); err != nil {
		b.Fatal(err) // warm the curve caches before timing
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eq, err := equilibrium.Solve(sc, equilibriumPlayers, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if !eq.Certified {
			b.Fatal("uncertified equilibrium")
		}
	}
}

// scorerColdMachines is the workload of the cold-scorer benchmarks: 12
// distinct 4-tenant machines over the full suite, so a cold scorer must
// build every aggregate-statistics and curve key from scratch.
func scorerColdMachines(db *simdb.DB) [][]string {
	names := db.BenchNames()
	var machines [][]string
	for i := 0; i+4 <= len(names); i += 2 {
		machines = append(machines, names[i:i+4])
	}
	return machines
}

// BenchmarkScorerColdSerial measures scoring the cold-machine set on a
// fresh scorer from one goroutine — the single-flight baseline the
// parallel variant is compared against.
func BenchmarkScorerColdSerial(b *testing.B) {
	env := benchEnv(b)
	machines := scorerColdMachines(env.DB4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := sched.NewScorer(env.DB4)
		var buf sched.ScoreBuf
		for _, m := range machines {
			if _, err := sc.ScoreInto(m, &buf); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(len(machines)), "scores/op")
}

// BenchmarkScorerColdParallel runs GOMAXPROCS goroutines over the whole
// cold-machine set sharing one scorer — workers× the scoring work of
// BenchmarkScorerColdSerial, colliding on every cold key. Builds run
// outside the scorer lock behind per-key single-flight, so the time per
// op stays near the serial bench (the multiplied work scales across
// cores) instead of growing with the worker count as it did when the
// lock was held across curve builds; scores/op records the multiplier
// for the benchdiff artifact.
func BenchmarkScorerColdParallel(b *testing.B) {
	env := benchEnv(b)
	machines := scorerColdMachines(env.DB4)
	workers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := sched.NewScorer(env.DB4)
		var wg sync.WaitGroup
		errs := make([]error, workers)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var buf sched.ScoreBuf
				for k := range machines {
					m := machines[(k+w)%len(machines)]
					if _, err := sc.ScoreInto(m, &buf); err != nil {
						errs[w] = err
						return
					}
				}
			}(w)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.ReportMetric(float64(workers*len(machines)), "scores/op")
}

// BenchmarkSimDBBuild measures the offline detailed-simulation step for one
// benchmark (the thesis Figure 2.1 database construction, per application).
// The process-wide profile cache is reset each iteration so the cold build
// cost is what is measured.
func BenchmarkSimDBBuild(b *testing.B) {
	sys := benchEnv(b).DB4.Sys
	bench := trace.ByName("gcc")
	opt := simdb.DefaultBuildOptions()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		simdb.ResetProfileCache()
		if _, err := simdb.Build(sys, []*trace.Benchmark{bench}, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEnvBuild measures the full offline environment construction —
// both databases, characterizations and mixes — cold (profile cache reset
// each iteration). This is the build-side headline number recorded in the
// CI bench artifact; the query-side counterpart is BenchmarkSimDBLookup.
func BenchmarkEnvBuild(b *testing.B) {
	if testing.Short() {
		b.Skip("skipping multi-second environment build in -short mode")
	}
	for i := 0; i < b.N; i++ {
		simdb.ResetProfileCache()
		if _, err := experiments.BuildEnv(); err != nil {
			b.Fatal(err)
		}
	}
}

// benchWireRequest builds a representative decide frame: a 64-query
// batch of 4-core co-phase vectors under uniform slack — the shape the
// serving hot path sees from loadgen and batch-oriented clients.
func benchWireRequest() *wire.DecideRequest {
	rng := stats.NewRNG(stats.SeedFrom(1, "bench/wire"))
	req := &wire.DecideRequest{
		Seq:    7,
		DBHash: 0x1234567890abcdef,
		Scheme: 3, // rm2
		NCores: 4,
		Flags:  wire.FlagSlackUniform,
		Slack:  0.2,
	}
	for q := 0; q < 64; q++ {
		for c := 0; c < 4; c++ {
			req.Apps = append(req.Apps, wire.App{
				Bench: uint16(rng.Intn(16)),
				Phase: uint16(rng.Intn(8)),
			})
		}
	}
	return req
}

// BenchmarkWireEncode measures encoding one 64-query binary decide frame
// into a reused buffer (the client side of the wire hot path).
func BenchmarkWireEncode(b *testing.B) {
	req := benchWireRequest()
	buf := wire.AppendDecideRequest(nil, req)
	b.SetBytes(int64(len(buf)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.AppendDecideRequest(buf[:0], req)
	}
}

// BenchmarkWireDecode measures the zero-copy decode of the same frame
// into caller-owned scratch (the server side; steady state is 0 allocs —
// pinned by TestDecodeZeroAlloc in internal/wire).
func BenchmarkWireDecode(b *testing.B) {
	frame := wire.AppendDecideRequest(nil, benchWireRequest())
	payload := frame[wire.HeaderSize:]
	var req wire.DecideRequest
	b.SetBytes(int64(len(frame)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := wire.ParseDecideRequest(payload, &req); err != nil {
			b.Fatal(err)
		}
	}
}
