module qosrma

go 1.24
