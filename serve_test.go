package qosrma

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"qosrma/internal/sched"
)

// TestServeFacade drives the public serving surface end to end: the
// handler built by System.NewServer answers decisions deterministically
// (identical bytes for identical queries, cached or not), scores
// collocations identically to the library scorer, and reports its
// counters through /v1/healthz.
func TestServeFacade(t *testing.T) {
	s := testSystem(t)
	srv := s.NewServer(ServeSpec{Shards: 2, Batch: 8})
	defer srv.Close()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(path, body string) (int, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, b
	}

	decide := `{"scheme":"rm2","slack":0.2,"apps":[{"bench":"mcf","phase":0},{"bench":"soplex","phase":0},{"bench":"hmmer","phase":0},{"bench":"namd","phase":0}]}`
	code1, body1 := post("/v1/decide", decide)
	code2, body2 := post("/v1/decide", decide) // second hit is served from the LRU
	if code1 != http.StatusOK || code2 != http.StatusOK {
		t.Fatalf("decide statuses %d, %d", code1, code2)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatalf("cached decision differs from computed:\n%s\nvs\n%s", body1, body2)
	}
	var ans struct {
		Result struct {
			Decided  bool `json:"decided"`
			Settings []struct {
				Ways int `json:"ways"`
			} `json:"settings"`
		} `json:"result"`
	}
	if err := json.Unmarshal(body1, &ans); err != nil {
		t.Fatal(err)
	}
	if !ans.Result.Decided || len(ans.Result.Settings) != 4 {
		t.Fatalf("decision malformed: %s", body1)
	}
	ways := 0
	for _, st := range ans.Result.Settings {
		ways += st.Ways
	}
	if ways > s.Config().LLC.Assoc {
		t.Fatalf("allocated %d ways, LLC has %d", ways, s.Config().LLC.Assoc)
	}

	// Score a full machine: equal to the library scorer bit for bit.
	code, body := post("/v1/score", `{"apps":["mcf","omnetpp","perlbench","xalancbmk"]}`)
	if code != http.StatusOK {
		t.Fatalf("score status %d", code)
	}
	var score struct {
		Score *float64 `json:"score"`
	}
	if err := json.Unmarshal(body, &score); err != nil {
		t.Fatal(err)
	}
	want, err := sched.PredictSavings(s.DB(), []string{"mcf", "omnetpp", "perlbench", "xalancbmk"})
	if err != nil {
		t.Fatal(err)
	}
	if score.Score == nil || *score.Score != want {
		t.Fatalf("served score %v, library %v", score.Score, want)
	}

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
		Decide struct {
			Queries   uint64 `json:"queries"`
			CacheHits uint64 `json:"cache_hits"`
		} `json:"decide"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" || health.Decide.Queries != 2 || health.Decide.CacheHits != 1 {
		t.Fatalf("healthz counters wrong: %+v", health)
	}
}
